#include <gtest/gtest.h>

#include "ir/analysis.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "ir/evaluator.h"
#include "ir/expr.h"
#include "ir/simplify.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

Schema TwoIntCols() {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, true});
  return s;
}

ExprPtr BindOrDie(const ExprPtr& e, const Schema& s) {
  auto r = Bind(e, s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

// --- Printing ----------------------------------------------------------------

TEST(ExprPrintTest, PrecedenceMinimalParens) {
  ExprPtr e = (Col("a") + Col("b")) * Lit(2);
  EXPECT_EQ(e->ToString(), "(a + b) * 2");
  ExprPtr f = Col("a") + Col("b") * Lit(2);
  EXPECT_EQ(f->ToString(), "a + b * 2");
}

TEST(ExprPrintTest, SubtractionRightAssociativity) {
  ExprPtr e = Col("a") - (Col("b") - Lit(1));
  EXPECT_EQ(e->ToString(), "a - (b - 1)");
  ExprPtr f = (Col("a") - Col("b")) - Lit(1);
  EXPECT_EQ(f->ToString(), "a - b - 1");
}

TEST(ExprPrintTest, LogicPrecedence) {
  ExprPtr e = (Col("a") < Lit(1)) && ((Col("b") < Lit(2)) || (Col("b") > Lit(3)));
  EXPECT_EQ(e->ToString(), "a < 1 AND (b < 2 OR b > 3)");
}

TEST(ExprPrintTest, QualifiedColumnAndDate) {
  ExprPtr e = Col("lineitem", "l_shipdate") < DateL(8552);
  EXPECT_EQ(e->ToString(), "lineitem.l_shipdate < DATE '1993-06-01'");
}

TEST(ExprPrintTest, NotRendering) {
  ExprPtr e = !(Col("a") < Lit(3));
  EXPECT_EQ(e->ToString(), "NOT a < 3");
}

// --- Operator helpers --------------------------------------------------------

TEST(ExprOpsTest, SwapAndNegate) {
  EXPECT_EQ(SwapCompare(CompareOp::kLt), CompareOp::kGt);
  EXPECT_EQ(SwapCompare(CompareOp::kGe), CompareOp::kLe);
  EXPECT_EQ(SwapCompare(CompareOp::kEq), CompareOp::kEq);
  EXPECT_EQ(NegateCompare(CompareOp::kLt), CompareOp::kGe);
  EXPECT_EQ(NegateCompare(CompareOp::kEq), CompareOp::kNe);
}

TEST(ExprOpsTest, AndOrOfLists) {
  EXPECT_TRUE(Expr::And({})->IsTrueLiteral());
  EXPECT_TRUE(Expr::Or({})->IsFalseLiteral());
  std::vector<ExprPtr> two = {Col("a") < Lit(1), Col("a") > Lit(0)};
  EXPECT_EQ(Expr::And(two)->ToString(), "a < 1 AND a > 0");
}

TEST(ExprOpsTest, StructuralEquality) {
  ExprPtr a = Col("a") + Lit(3);
  ExprPtr b = Col("a") + Lit(3);
  ExprPtr c = Col("a") + Lit(4);
  EXPECT_TRUE(Expr::Equal(a, b));
  EXPECT_FALSE(Expr::Equal(a, c));
}

TEST(ExprOpsTest, TreeSize) {
  ExprPtr e = (Col("a") + Lit(1)) < Col("b");
  EXPECT_EQ(e->TreeSize(), 5u);
}

// --- Binder -------------------------------------------------------------------

TEST(BinderTest, ResolvesAndTypes) {
  Schema s = TwoIntCols();
  ExprPtr bound = BindOrDie(Col("a") + Lit(1) < Col("b"), s);
  EXPECT_EQ(bound->type(), DataType::kBoolean);
  EXPECT_EQ(bound->left()->type(), DataType::kInteger);
  EXPECT_TRUE(bound->left()->left()->is_bound());
  EXPECT_EQ(bound->left()->left()->index(), 0u);
}

TEST(BinderTest, DateArithmeticTypes) {
  Schema s;
  s.AddColumn({"t", "d1", DataType::kDate, false});
  s.AddColumn({"t", "d2", DataType::kDate, false});
  ExprPtr diff = BindOrDie(Col("d1") - Col("d2"), s);
  EXPECT_EQ(diff->type(), DataType::kInteger);
  ExprPtr shift = BindOrDie(Col("d1") + Lit(20), s);
  EXPECT_EQ(shift->type(), DataType::kDate);
}

TEST(BinderTest, UnknownColumnFails) {
  Schema s = TwoIntCols();
  EXPECT_FALSE(Bind(Col("zz") < Lit(1), s).ok());
}

TEST(BinderTest, TypeErrors) {
  Schema s = TwoIntCols();
  // boolean used in arithmetic
  EXPECT_FALSE(Bind((Col("a") < Lit(1)) + Lit(2), s).ok());
  // numeric used with AND
  EXPECT_FALSE(Bind(Expr::Logic(LogicOp::kAnd, Col("a"), Col("b")), s).ok());
}

// --- Evaluator (3VL) ----------------------------------------------------------

TEST(EvaluatorTest, KleeneTables) {
  const TruthValue T = TruthValue::kTrue;
  const TruthValue F = TruthValue::kFalse;
  const TruthValue U = TruthValue::kUnknown;
  EXPECT_EQ(And3(T, U), U);
  EXPECT_EQ(And3(F, U), F);
  EXPECT_EQ(Or3(T, U), T);
  EXPECT_EQ(Or3(F, U), U);
  EXPECT_EQ(Not3(U), U);
  EXPECT_EQ(Not3(T), F);
}

TEST(EvaluatorTest, ArithmeticAndComparison) {
  Schema s = TwoIntCols();
  ExprPtr e = BindOrDie(Col("a") * Lit(2) + Lit(1) > Col("b"), s);
  Tuple t({Value::Integer(3), Value::Integer(6)});
  EXPECT_TRUE(Satisfies(*e, t).value());  // 7 > 6
  Tuple f({Value::Integer(2), Value::Integer(6)});
  EXPECT_FALSE(Satisfies(*e, f).value());  // 5 > 6
}

TEST(EvaluatorTest, NullPropagation) {
  Schema s = TwoIntCols();
  ExprPtr e = BindOrDie(Col("a") < Col("b"), s);
  Tuple t({Value::Integer(1), Value::Null()});
  EXPECT_EQ(EvalPredicate(*e, t).value(), TruthValue::kUnknown);
  EXPECT_FALSE(Satisfies(*e, t).value());  // UNKNOWN is not TRUE
}

TEST(EvaluatorTest, NullShortCircuit) {
  Schema s = TwoIntCols();
  // FALSE AND NULL = FALSE; TRUE OR NULL = TRUE.
  ExprPtr e1 = BindOrDie((Col("a") > Lit(100)) && (Col("b") < Lit(0)), s);
  ExprPtr e2 = BindOrDie((Col("a") < Lit(100)) || (Col("b") < Lit(0)), s);
  Tuple t({Value::Integer(1), Value::Null()});
  EXPECT_EQ(EvalPredicate(*e1, t).value(), TruthValue::kFalse);
  EXPECT_EQ(EvalPredicate(*e2, t).value(), TruthValue::kTrue);
}

TEST(EvaluatorTest, DivisionSemantics) {
  Schema s = TwoIntCols();
  ExprPtr e = BindOrDie(Col("a") / Col("b") == Lit(-2), s);
  // Truncation toward zero: -7 / 3 == -2.
  Tuple t({Value::Integer(-7), Value::Integer(3)});
  EXPECT_TRUE(Satisfies(*e, t).value());
  // Division by zero yields NULL -> UNKNOWN.
  Tuple z({Value::Integer(5), Value::Integer(0)});
  EXPECT_EQ(EvalPredicate(*e, z).value(), TruthValue::kUnknown);
}

TEST(EvaluatorTest, DoublePromotion) {
  Schema s;
  s.AddColumn({"t", "x", DataType::kDouble, false});
  ExprPtr e = BindOrDie(Col("x") * Lit(2) > Lit(3), s);
  EXPECT_TRUE(Satisfies(*e, Tuple({Value::Double(1.6)})).value());
  EXPECT_FALSE(Satisfies(*e, Tuple({Value::Double(1.4)})).value());
}

TEST(EvaluatorTest, ErrorsOnUnbound) {
  ExprPtr e = Col("a") < Lit(1);
  EXPECT_FALSE(Satisfies(*e, Tuple({Value::Integer(1)})).ok());
}

// --- Analysis -------------------------------------------------------------------

TEST(AnalysisTest, CollectColumnsAndTables) {
  Schema s = TwoIntCols();
  ExprPtr e = BindOrDie((Col("a") < Lit(1)) && (Col("b") + Col("a") > Lit(0)), s);
  EXPECT_EQ(CollectColumnIndices(e), (std::vector<size_t>{0, 1}));
  EXPECT_EQ(CollectTables(e), (std::set<std::string>{"t"}));
}

TEST(AnalysisTest, UsesOnlyColumns) {
  Schema s = TwoIntCols();
  ExprPtr e = BindOrDie(Col("a") < Lit(1), s);
  EXPECT_TRUE(UsesOnlyColumns(e, {0}));
  EXPECT_TRUE(UsesOnlyColumns(e, {0, 1}));
  EXPECT_FALSE(UsesOnlyColumns(e, {1}));
}

TEST(AnalysisTest, SplitAndCombineConjuncts) {
  Schema s = TwoIntCols();
  ExprPtr e = BindOrDie(
      (Col("a") < Lit(1)) && ((Col("b") > Lit(2)) && (Col("a") > Lit(0))), s);
  const auto parts = SplitConjuncts(e);
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(CombineConjuncts(parts)->ToString(),
            "t.a < 1 AND t.b > 2 AND t.a > 0");
  // OR is not split.
  ExprPtr o = BindOrDie((Col("a") < Lit(1)) || (Col("b") > Lit(2)), s);
  EXPECT_EQ(SplitConjuncts(o).size(), 1u);
}

TEST(AnalysisTest, SubstituteColumns) {
  Schema s = TwoIntCols();
  ExprPtr e = BindOrDie(Col("a") + Col("b") < Lit(10), s);
  ExprPtr sub = SubstituteColumns(e, {{0, Expr::IntLit(7)}});
  Tuple t({Value::Integer(999), Value::Integer(2)});
  EXPECT_TRUE(Satisfies(*sub, t).value());  // 7 + 2 < 10
}

TEST(AnalysisTest, RemapColumnIndices) {
  Schema s = TwoIntCols();
  ExprPtr e = BindOrDie(Col("a") < Col("b"), s);
  ExprPtr remapped = RemapColumnIndices(e, {{0, 1}, {1, 0}});
  Tuple t({Value::Integer(5), Value::Integer(3)});
  // Original: 5 < 3 false. Remapped: 3 < 5 true.
  EXPECT_FALSE(Satisfies(*e, t).value());
  EXPECT_TRUE(Satisfies(*remapped, t).value());
}

// --- Simplify ----------------------------------------------------------------

TEST(SimplifyTest, ConstantFolding) {
  ExprPtr e = Lit(2) + Lit(3) * Lit(4);
  EXPECT_EQ(Simplify(e)->ToString(), "14");
}

TEST(SimplifyTest, LogicIdentities) {
  Schema s = TwoIntCols();
  ExprPtr p = BindOrDie(Col("a") < Lit(1), s);
  EXPECT_EQ(Simplify(Expr::Logic(LogicOp::kAnd, Expr::BoolLit(true), p)).get(),
            p.get());
  EXPECT_TRUE(Simplify(Expr::Logic(LogicOp::kAnd, Expr::BoolLit(false), p))
                  ->IsFalseLiteral());
  EXPECT_TRUE(Simplify(Expr::Logic(LogicOp::kOr, Expr::BoolLit(true), p))
                  ->IsTrueLiteral());
  EXPECT_EQ(Simplify(Expr::Logic(LogicOp::kOr, Expr::BoolLit(false), p)).get(),
            p.get());
}

TEST(SimplifyTest, ArithmeticIdentities) {
  Schema s = TwoIntCols();
  ExprPtr a = BindOrDie(Col("a"), s);
  EXPECT_EQ(Simplify(a + Lit(0)).get(), a.get());
  EXPECT_EQ(Simplify(Lit(1) * a).get(), a.get());
  EXPECT_EQ(Simplify(a - Lit(0)).get(), a.get());
}

TEST(SimplifyTest, DoubleNegationAndComparisonNegation) {
  Schema s = TwoIntCols();
  ExprPtr p = BindOrDie(Col("a") < Lit(1), s);
  EXPECT_TRUE(Expr::Equal(Simplify(!(!p)), p));
  EXPECT_EQ(Simplify(!p)->ToString(), "t.a >= 1");
}

TEST(SimplifyTest, ComparisonOfConstants) {
  EXPECT_TRUE(Simplify(Lit(2) < Lit(3))->IsTrueLiteral());
  EXPECT_TRUE(Simplify(Lit(5) < Lit(3))->IsFalseLiteral());
}

}  // namespace
}  // namespace sia
