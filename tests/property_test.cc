// Cross-cutting property tests: soundness invariants that must hold for
// ALL inputs, checked over randomized sweeps (seeded, so deterministic).
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/rng.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "ir/analysis.h"
#include "ir/binder.h"
#include "ir/evaluator.h"
#include "ir/simplify.h"
#include "rewrite/rules.h"
#include "synth/sample_generator.h"
#include "synth/synthesizer.h"
#include "synth/verifier.h"
#include "workload/querygen.h"

namespace sia {
namespace {

Schema ThreeCols() {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, true});
  s.AddColumn({"t", "b", DataType::kInteger, true});
  s.AddColumn({"t", "c", DataType::kInteger, true});
  return s;
}

// Random expression builders shared by the sweeps.
ExprPtr RandomScalar(Rng& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.4)) {
    if (rng.Bernoulli(0.55)) {
      return Expr::Column("t", std::string(1, "abc"[rng.Uniform(0, 2)]));
    }
    return Expr::IntLit(rng.Uniform(-25, 25));
  }
  const ArithOp ops[] = {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul,
                         ArithOp::kDiv};
  return Expr::Arith(ops[rng.Uniform(0, 3)], RandomScalar(rng, depth - 1),
                     RandomScalar(rng, depth - 1));
}

ExprPtr RandomPredicate(Rng& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.3)) {
    return Expr::Compare(static_cast<CompareOp>(rng.Uniform(0, 5)),
                         RandomScalar(rng, 2), RandomScalar(rng, 2));
  }
  if (rng.Bernoulli(0.2)) return Expr::Not(RandomPredicate(rng, depth - 1));
  return Expr::Logic(rng.Bernoulli(0.5) ? LogicOp::kAnd : LogicOp::kOr,
                     RandomPredicate(rng, depth - 1),
                     RandomPredicate(rng, depth - 1));
}

Tuple RandomTuple(Rng& rng, double null_prob = 0.15) {
  std::vector<Value> vals;
  for (int i = 0; i < 3; ++i) {
    vals.push_back(rng.Bernoulli(null_prob)
                       ? Value::Null(DataType::kInteger)
                       : Value::Integer(rng.Uniform(-25, 25)));
  }
  return Tuple(vals);
}

// --- Simplify soundness: same 3VL result on every tuple -----------------

class SimplifySoundness : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SimplifySoundness, PreservesEvaluation) {
  Rng rng(GetParam());
  const Schema s = ThreeCols();
  for (int trial = 0; trial < 60; ++trial) {
    auto bound = Bind(RandomPredicate(rng, 3), s);
    ASSERT_TRUE(bound.ok());
    ExprPtr simplified = Simplify(*bound);
    for (int probe = 0; probe < 12; ++probe) {
      Tuple t = RandomTuple(rng);
      const auto before = EvalPredicate(**bound, t);
      const auto after = EvalPredicate(*simplified, t);
      ASSERT_TRUE(before.ok() && after.ok());
      EXPECT_EQ(before.value(), after.value())
          << (*bound)->ToString() << "  ~~>  " << simplified->ToString()
          << "  on " << t.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SimplifySoundness,
                         ::testing::Values(11, 22, 33, 44));

// --- Transitive closure soundness: derived conjuncts are implied --------

class TransitiveClosureSoundness : public ::testing::TestWithParam<uint64_t> {
};

TEST_P(TransitiveClosureSoundness, DerivedConjunctsAreImplied) {
  Rng rng(GetParam());
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, false});
  s.AddColumn({"t", "c", DataType::kInteger, false});
  for (int trial = 0; trial < 8; ++trial) {
    // Comparison chains over columns and constants.
    std::vector<ExprPtr> conjuncts;
    const int n = 2 + static_cast<int>(rng.Uniform(0, 2));
    for (int i = 0; i < n; ++i) {
      ExprPtr raw = Expr::Compare(
          static_cast<CompareOp>(rng.Uniform(0, 4)),  // no <>
          RandomScalar(rng, 1), RandomScalar(rng, 1));
      auto bound = Bind(raw, s);
      ASSERT_TRUE(bound.ok());
      conjuncts.push_back(*bound);
    }
    const auto derived = TransitiveClosure(conjuncts);
    if (derived.empty()) continue;
    const ExprPtr original = CombineConjuncts(conjuncts);
    for (const ExprPtr& d : derived) {
      auto v = VerifyImplies(original, d, s);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, VerifyResult::kValid)
          << original->ToString() << "  |=/=  " << d->ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransitiveClosureSoundness,
                         ::testing::Values(5, 6, 7));

// --- Synthesis validity on the paper workload ---------------------------

TEST(SynthesisSoundness, WorkloadPredicatesAlwaysVerify) {
  const Catalog catalog = Catalog::TpchCatalog();
  const Schema joint = catalog.JointSchema({"lineitem", "orders"}).value();
  QueryGenOptions gen;
  gen.seed = 777;
  auto queries = GenerateWorkload(catalog, 4, gen);
  ASSERT_TRUE(queries.ok());

  const size_t ship = *joint.FindColumn("l_shipdate");
  const size_t commit = *joint.FindColumn("l_commitdate");
  SynthesisOptions opts;
  opts.max_iterations = 10;  // soundness is iteration-independent

  for (const GeneratedQuery& g : *queries) {
    auto bound = Bind(g.query.where, joint);
    ASSERT_TRUE(bound.ok());
    for (const std::vector<size_t>& cols :
         {std::vector<size_t>{ship}, std::vector<size_t>{ship, commit}}) {
      auto r = Synthesize(*bound, joint, cols, opts);
      ASSERT_TRUE(r.ok()) << g.sql;
      if (!r->has_predicate()) continue;
      EXPECT_TRUE(UsesOnlyColumns(r->predicate, cols))
          << r->predicate->ToString();
      auto v = VerifyImplies(*bound, r->predicate, joint);
      ASSERT_TRUE(v.ok());
      EXPECT_EQ(*v, VerifyResult::kValid)
          << g.sql << "\n learned: " << r->predicate->ToString();
    }
  }
}

// --- Planner equivalence: pushdown must never change results ------------

TEST(PlannerSoundness, PushdownPreservesResultsOnWorkload) {
  const Catalog catalog = Catalog::TpchCatalog();
  const TpchData data = GenerateTpch(0.001, 3);
  Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);
  executor.RegisterTable("orders", &data.orders);

  QueryGenOptions gen;
  gen.seed = 888;
  auto queries = GenerateWorkload(catalog, 8, gen);
  ASSERT_TRUE(queries.ok());
  for (const GeneratedQuery& g : *queries) {
    PlannerOptions push;
    push.push_down_filters = true;
    PlannerOptions nopush;
    nopush.push_down_filters = false;
    auto a = RunQuery(g.query, catalog, executor, push);
    auto b = RunQuery(g.query, catalog, executor, nopush);
    ASSERT_TRUE(a.ok() && b.ok()) << g.sql;
    EXPECT_EQ(a->row_count, b->row_count) << g.sql;
    EXPECT_EQ(a->content_hash, b->content_hash) << g.sql;
  }
}

// --- Sample definitions (Lemmas 3 & 4) on random predicates -------------

TEST(SampleSoundness, TrueSamplesAreFeasibleRestrictions) {
  Rng rng(99);
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, false});
  s.AddColumn({"t", "c", DataType::kInteger, false});
  int checked = 0;
  for (int trial = 0; trial < 12 && checked < 6; ++trial) {
    auto bound = Bind(RandomPredicate(rng, 2), s);
    ASSERT_TRUE(bound.ok());
    SampleGenerator gen(*bound, s, {0, 1});
    auto ts = gen.GenerateTrue(4);
    if (!ts.ok() || ts->empty()) continue;
    ++checked;
    for (const Tuple& t : *ts) {
      // A brute-force witness search over c must succeed.
      bool witness = false;
      for (int64_t c = -2000; c <= 2000 && !witness; ++c) {
        Tuple full({t.at(0), t.at(1), Value::Integer(c)});
        auto sat = Satisfies(**bound, full);
        witness = sat.ok() && *sat;
      }
      EXPECT_TRUE(witness) << (*bound)->ToString() << " sample "
                           << t.ToString();
    }
  }
  EXPECT_GT(checked, 0);
}

TEST(SampleSoundness, FalseSamplesRejectAllExtensions) {
  Rng rng(123);
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, false});
  s.AddColumn({"t", "c", DataType::kInteger, false});
  int checked = 0;
  for (int trial = 0; trial < 12 && checked < 6; ++trial) {
    auto bound = Bind(RandomPredicate(rng, 2), s);
    ASSERT_TRUE(bound.ok());
    SampleGenerator gen(*bound, s, {0, 1});
    auto fs = gen.GenerateFalse(3);
    if (!fs.ok() || fs->empty()) continue;
    ++checked;
    for (const Tuple& t : *fs) {
      for (int64_t c = -500; c <= 500; c += 3) {
        Tuple full({t.at(0), t.at(1), Value::Integer(c)});
        auto sat = Satisfies(**bound, full);
        ASSERT_TRUE(sat.ok());
        EXPECT_FALSE(*sat) << (*bound)->ToString() << " unsat tuple "
                           << t.ToString() << " satisfied at c=" << c;
      }
    }
  }
  EXPECT_GT(checked, 0);
}

}  // namespace
}  // namespace sia
