#include "common/fault_injection.h"

#include <algorithm>
#include <string>

#include <gtest/gtest.h>

#include "common/stopwatch.h"

namespace sia {
namespace {

// Every test leaves the process-wide registry clean; armed points
// otherwise leak into later tests (and other suites in this binary).
class FaultInjectionTest : public ::testing::Test {
 protected:
  void SetUp() override { FaultRegistry::Instance().DisarmAll(); }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }

  FaultRegistry& reg() { return FaultRegistry::Instance(); }
};

Status GuardedOperation() {
  SIA_FAULT_INJECT("smt.check");
  return Status::OK();
}

Result<int> GuardedResultOperation() {
  SIA_FAULT_INJECT("engine.scan");
  return 42;
}

TEST_F(FaultInjectionTest, DisabledByDefault) {
  EXPECT_FALSE(FaultRegistry::Enabled());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_TRUE(reg().Fire("smt.check").ok());
}

TEST_F(FaultInjectionTest, UnknownPointIsRejected) {
  const Status st = reg().Arm("smt.chekc", FaultSpec{});
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_FALSE(FaultRegistry::Enabled());
}

TEST_F(FaultInjectionTest, OnceFailsExactlyOnce) {
  ASSERT_TRUE(reg().Arm("smt.check", FaultSpec{}).ok());
  EXPECT_TRUE(FaultRegistry::Enabled());

  const Status first = GuardedOperation();
  ASSERT_FALSE(first.ok());
  EXPECT_EQ(first.code(), StatusCode::kInternal);
  EXPECT_NE(first.message().find("smt.check"), std::string::npos);

  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(reg().hits("smt.check"), 3u);
  EXPECT_EQ(reg().failures_injected("smt.check"), 1u);
}

TEST_F(FaultInjectionTest, AlwaysFailsEveryHit) {
  FaultSpec spec;
  spec.mode = FaultMode::kAlways;
  ASSERT_TRUE(reg().Arm("engine.scan", spec).ok());
  for (int i = 0; i < 3; ++i) {
    const Result<int> r = GuardedResultOperation();
    ASSERT_FALSE(r.ok());
    EXPECT_EQ(r.status().code(), StatusCode::kInternal);
  }
  EXPECT_EQ(reg().failures_injected("engine.scan"), 3u);
}

TEST_F(FaultInjectionTest, NthFailsExactlyTheNthHit) {
  FaultSpec spec;
  spec.mode = FaultMode::kNth;
  spec.nth = 3;
  ASSERT_TRUE(reg().Arm("smt.check", spec).ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_FALSE(GuardedOperation().ok());
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_EQ(reg().failures_injected("smt.check"), 1u);
}

TEST_F(FaultInjectionTest, ProbabilisticExtremes) {
  FaultSpec never;
  never.mode = FaultMode::kProbabilistic;
  never.probability = 0.0;
  ASSERT_TRUE(reg().Arm("smt.check", never).ok());
  for (int i = 0; i < 20; ++i) EXPECT_TRUE(GuardedOperation().ok());

  FaultSpec certain;
  certain.mode = FaultMode::kProbabilistic;
  certain.probability = 1.0;
  ASSERT_TRUE(reg().Arm("smt.check", certain).ok());
  for (int i = 0; i < 20; ++i) EXPECT_FALSE(GuardedOperation().ok());
}

TEST_F(FaultInjectionTest, LatencySleepsButSucceeds) {
  FaultSpec spec;
  spec.mode = FaultMode::kLatency;
  spec.latency_ms = 30;
  ASSERT_TRUE(reg().Arm("smt.check", spec).ok());
  Stopwatch sw;
  EXPECT_TRUE(GuardedOperation().ok());
  EXPECT_GE(sw.ElapsedMillis(), 25.0);
  EXPECT_EQ(reg().failures_injected("smt.check"), 0u);
}

TEST_F(FaultInjectionTest, DisarmHealsThePoint) {
  FaultSpec spec;
  spec.mode = FaultMode::kAlways;
  ASSERT_TRUE(reg().Arm("smt.check", spec).ok());
  EXPECT_FALSE(GuardedOperation().ok());
  reg().Disarm("smt.check");
  EXPECT_FALSE(FaultRegistry::Enabled());
  EXPECT_TRUE(GuardedOperation().ok());
}

TEST_F(FaultInjectionTest, SpecParsing) {
  EXPECT_EQ(FaultSpec::Parse("once")->mode, FaultMode::kOnce);
  EXPECT_EQ(FaultSpec::Parse("")->mode, FaultMode::kOnce);
  EXPECT_EQ(FaultSpec::Parse("always")->mode, FaultMode::kAlways);

  const Result<FaultSpec> nth = FaultSpec::Parse("nth:7");
  ASSERT_TRUE(nth.ok());
  EXPECT_EQ(nth->mode, FaultMode::kNth);
  EXPECT_EQ(nth->nth, 7u);

  const Result<FaultSpec> prob = FaultSpec::Parse("prob:0.25");
  ASSERT_TRUE(prob.ok());
  EXPECT_EQ(prob->mode, FaultMode::kProbabilistic);
  EXPECT_DOUBLE_EQ(prob->probability, 0.25);

  const Result<FaultSpec> lat = FaultSpec::Parse("latency:50");
  ASSERT_TRUE(lat.ok());
  EXPECT_EQ(lat->mode, FaultMode::kLatency);
  EXPECT_EQ(lat->latency_ms, 50u);

  EXPECT_FALSE(FaultSpec::Parse("sometimes").ok());
  EXPECT_FALSE(FaultSpec::Parse("nth:0").ok());
  EXPECT_FALSE(FaultSpec::Parse("nth:x").ok());
  EXPECT_FALSE(FaultSpec::Parse("prob:1.5").ok());
  EXPECT_FALSE(FaultSpec::Parse("prob:").ok());
  EXPECT_FALSE(FaultSpec::Parse("latency:ms").ok());
}

TEST_F(FaultInjectionTest, ArmFromSpecString) {
  ASSERT_TRUE(
      reg().ArmFromSpec("smt.check=once, engine.scan=latency:1").ok());
  EXPECT_FALSE(GuardedOperation().ok());      // once: first hit fails
  EXPECT_TRUE(GuardedResultOperation().ok()); // latency: never fails

  // A bare point name means "once".
  reg().DisarmAll();
  ASSERT_TRUE(reg().ArmFromSpec("learn.train").ok());
  EXPECT_FALSE(reg().Fire("learn.train").ok());
  EXPECT_TRUE(reg().Fire("learn.train").ok());

  EXPECT_FALSE(reg().ArmFromSpec("no.such.point=always").ok());
  EXPECT_FALSE(reg().ArmFromSpec("smt.check=bogus").ok());
}

TEST_F(FaultInjectionTest, KnownPointsCoverThePipeline) {
  const auto& points = FaultRegistry::KnownPoints();
  EXPECT_GE(points.size(), 7u);
  for (const char* expected :
       {"smt.check", "smt.optimize", "synth.sample", "verify.cex",
        "verify.check", "learn.train", "engine.scan"}) {
    EXPECT_NE(std::find(points.begin(), points.end(), expected),
              points.end())
        << expected;
  }
}

}  // namespace
}  // namespace sia
