// The online-learning state machine (rewrite/rewrite_cache.h) and the
// background synthesis lane (rewrite/background_synthesizer.h): every
// legal transition of kSynthesizing → kQuarantined → kPromoted /
// kDemoted is exercised, every illegal one is rejected, and the
// "marker always released" invariant holds across drops, crashes, and
// drains — a key can never wedge in kSynthesizing.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "common/fault_injection.h"
#include "common/status.h"
#include "common/sync.h"
#include "common/thread_pool.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "rewrite/background_synthesizer.h"
#include "rewrite/rewrite_cache.h"
#include "rewrite/sia_rewriter.h"
#include "types/schema.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

Schema OneColSchema() {
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, false});
  return s;
}

ExprPtr MakeKey(const Schema& s) { return Bind(Col("x") < Lit(7), s).value(); }

RewriteCache::Entry LearnedEntry(const Schema& s) {
  RewriteCache::Entry entry;
  entry.status = SynthesisStatus::kValid;
  entry.predicate = Bind(Col("x") < Lit(5), s).value();
  entry.rung = 0;
  return entry;
}

ShadowOutcome Win() {
  ShadowOutcome outcome;
  outcome.original_ms = 10.0;
  outcome.rewritten_ms = 1.0;
  return outcome;
}

ShadowOutcome Loss() {
  ShadowOutcome outcome;
  outcome.original_ms = 1.0;
  outcome.rewritten_ms = 50.0;
  return outcome;
}

// --- Decide: miss, dedup, and the marker ------------------------------------

TEST(PromotionStateMachineTest, MissInsertsMarkerAndDedupsConcurrentMisses) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  const PromotionPolicy policy;

  // First miss: exactly one caller is told to enqueue.
  ServingDecision first = cache.Decide(key, {0}, policy, false, 0);
  EXPECT_TRUE(first.enqueue);
  EXPECT_FALSE(first.serve_rewrite);
  EXPECT_FALSE(first.shadow);
  EXPECT_EQ(first.state, EntryState::kSynthesizing);

  // Every later consult sees the marker and serves the original; the
  // marker IS the dedup — no second enqueue for the same key.
  for (int i = 0; i < 3; ++i) {
    ServingDecision again = cache.Decide(key, {0}, policy, true, 0);
    EXPECT_FALSE(again.enqueue);
    EXPECT_FALSE(again.serve_rewrite);
    EXPECT_FALSE(again.shadow);
    EXPECT_EQ(again.state, EntryState::kSynthesizing);
  }
  EXPECT_EQ(cache.stats().synthesizing, 1u);
}

TEST(PromotionStateMachineTest, AbortSynthesisLeavesKeyRequeueable) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  const PromotionPolicy policy;

  EXPECT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  cache.AbortSynthesis(key, {0});
  EXPECT_EQ(cache.stats().synthesizing, 0u);
  // The next miss starts over: never wedged.
  EXPECT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
}

TEST(PromotionStateMachineTest, AbortSynthesisDoesNotTouchOtherStates) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  const PromotionPolicy policy;

  EXPECT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  ASSERT_TRUE(cache.CompleteSynthesis(key, {0}, LearnedEntry(s)).ok());
  cache.AbortSynthesis(key, {0});  // no-op: the entry is quarantined
  const auto entry = cache.Lookup(key, {0});
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->state, EntryState::kQuarantined);
}

// --- CompleteSynthesis: the only way out of kSynthesizing -------------------

TEST(PromotionStateMachineTest, LearnedPredicateQuarantinesNullPromotes) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  const PromotionPolicy policy;

  // A learned predicate starts untrusted: quarantined, shadow-only.
  EXPECT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  ASSERT_TRUE(cache.CompleteSynthesis(key, {0}, LearnedEntry(s)).ok());
  ServingDecision sampled = cache.Decide(key, {0}, policy, true, 0);
  EXPECT_EQ(sampled.state, EntryState::kQuarantined);
  EXPECT_FALSE(sampled.serve_rewrite);  // clients still get the original
  EXPECT_TRUE(sampled.shadow);
  EXPECT_NE(sampled.predicate, nullptr);
  // An unsampled consult does not shadow.
  EXPECT_FALSE(cache.Decide(key, {0}, policy, false, 0).shadow);

  // "Nothing to learn" is a verified answer: straight to kPromoted, and
  // the original keeps being served (no predicate to conjoin or shadow).
  const ExprPtr other = Bind(Col("x") < Lit(9), s).value();
  EXPECT_TRUE(cache.Decide(other, {0}, policy, false, 0).enqueue);
  RewriteCache::Entry nothing;
  nothing.status = SynthesisStatus::kNone;
  nothing.predicate = nullptr;
  ASSERT_TRUE(cache.CompleteSynthesis(other, {0}, std::move(nothing)).ok());
  ServingDecision promoted = cache.Decide(other, {0}, policy, true, 0);
  EXPECT_EQ(promoted.state, EntryState::kPromoted);
  EXPECT_FALSE(promoted.serve_rewrite);
  EXPECT_FALSE(promoted.shadow);
}

TEST(PromotionStateMachineTest, IllegalTransitionsAreRejected) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  const PromotionPolicy policy;

  // Publishing against a key with no marker: the job was aborted.
  EXPECT_EQ(cache.CompleteSynthesis(key, {0}, LearnedEntry(s)).code(),
            StatusCode::kNotFound);
  // Shadow evidence against a missing entry.
  EXPECT_EQ(cache.RecordShadow(key, {0}, Win(), policy, 0).status().code(),
            StatusCode::kNotFound);

  // Shadow evidence against a bare marker: nothing was shadowed.
  EXPECT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  EXPECT_EQ(cache.RecordShadow(key, {0}, Win(), policy, 0).status().code(),
            StatusCode::kInvalidArgument);

  // Double publish: the second CompleteSynthesis finds a quarantined
  // entry, not a marker.
  ASSERT_TRUE(cache.CompleteSynthesis(key, {0}, LearnedEntry(s)).ok());
  EXPECT_EQ(cache.CompleteSynthesis(key, {0}, LearnedEntry(s)).code(),
            StatusCode::kInvalidArgument);
}

// --- RecordShadow: promotion, demotion, TTL, poison -------------------------

TEST(PromotionStateMachineTest, PromotesAfterKMeasuredWins) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  PromotionPolicy policy;
  policy.promote_after = 3;

  EXPECT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  ASSERT_TRUE(cache.CompleteSynthesis(key, {0}, LearnedEntry(s)).ok());
  for (int i = 0; i < policy.promote_after - 1; ++i) {
    auto state = cache.RecordShadow(key, {0}, Win(), policy, 0);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(*state, EntryState::kQuarantined);  // not yet enough evidence
  }
  auto state = cache.RecordShadow(key, {0}, Win(), policy, 0);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, EntryState::kPromoted);

  // A promoted entry actually serves the rewrite — and sampled serves
  // stay cross-checked for regressions.
  ServingDecision decision = cache.Decide(key, {0}, policy, true, 0);
  EXPECT_TRUE(decision.serve_rewrite);
  EXPECT_TRUE(decision.shadow);
  EXPECT_NE(decision.predicate, nullptr);
  EXPECT_EQ(decision.rung, 0);
}

TEST(PromotionStateMachineTest, WinThresholdHonorsFactorAndSlack) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  PromotionPolicy policy;
  policy.promote_after = 1;
  policy.win_factor = 1.25;
  policy.win_slack_ms = 2.0;

  EXPECT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  ASSERT_TRUE(cache.CompleteSynthesis(key, {0}, LearnedEntry(s)).ok());

  // Right at the boundary: 10 * 1.25 + 2.0 = 14.5 still counts as a win.
  ShadowOutcome boundary;
  boundary.original_ms = 10.0;
  boundary.rewritten_ms = 14.5;
  auto state = cache.RecordShadow(key, {0}, boundary, policy, 0);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, EntryState::kPromoted);

  // A failed rewritten run is always a loss, whatever the timings say.
  ShadowOutcome failed;
  failed.rewrite_failed = true;
  failed.original_ms = 100.0;
  failed.rewritten_ms = 0.0;
  policy.demote_after = 1;
  state = cache.RecordShadow(key, {0}, failed, policy, 0);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, EntryState::kDemoted);
}

TEST(PromotionStateMachineTest, DemotedEntryResurrectsAfterTtl) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  PromotionPolicy policy;
  policy.demote_after = 2;
  policy.demote_ttl_ms = 1000;

  EXPECT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  ASSERT_TRUE(cache.CompleteSynthesis(key, {0}, LearnedEntry(s)).ok());
  ASSERT_TRUE(cache.RecordShadow(key, {0}, Loss(), policy, 500).ok());
  auto state = cache.RecordShadow(key, {0}, Loss(), policy, 500);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, EntryState::kDemoted);

  // Inside the TTL: serve the original, do not re-learn.
  ServingDecision early = cache.Decide(key, {0}, policy, true, 1400);
  EXPECT_EQ(early.state, EntryState::kDemoted);
  EXPECT_FALSE(early.enqueue);
  EXPECT_FALSE(early.serve_rewrite);
  EXPECT_FALSE(early.shadow);

  // TTL expired: the failed attempt is forgotten and the key re-queues.
  ServingDecision late = cache.Decide(key, {0}, policy, true, 1500);
  EXPECT_EQ(late.state, EntryState::kSynthesizing);
  EXPECT_TRUE(late.enqueue);
}

TEST(PromotionStateMachineTest, DigestMismatchPoisonsPermanently) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  PromotionPolicy policy;
  policy.promote_after = 1;

  EXPECT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  ASSERT_TRUE(cache.CompleteSynthesis(key, {0}, LearnedEntry(s)).ok());
  ASSERT_TRUE(cache.RecordShadow(key, {0}, Win(), policy, 0).ok());
  ASSERT_EQ(cache.stats().promoted, 1u);

  ShadowOutcome mismatch;
  mismatch.mismatch = true;
  auto state = cache.RecordShadow(key, {0}, mismatch, policy, 0);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, EntryState::kQuarantined);
  EXPECT_EQ(cache.stats().poisoned, 1u);

  // The predicate is gone and the entry never shadows, serves, or
  // re-queues again — not even after any amount of time.
  const auto entry = cache.Lookup(key, {0});
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->predicate, nullptr);
  EXPECT_TRUE(entry->poisoned);
  ServingDecision decision =
      cache.Decide(key, {0}, policy, true, /*now_ms=*/1'000'000'000);
  EXPECT_FALSE(decision.enqueue);
  EXPECT_FALSE(decision.serve_rewrite);
  EXPECT_FALSE(decision.shadow);
}

TEST(PromotionStateMachineTest, PromotedEntryDemotesOnMeasuredRegressions) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  PromotionPolicy policy;
  policy.promote_after = 1;
  policy.demote_after = 3;

  EXPECT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  ASSERT_TRUE(cache.CompleteSynthesis(key, {0}, LearnedEntry(s)).ok());
  ASSERT_TRUE(cache.RecordShadow(key, {0}, Win(), policy, 0).ok());

  for (int i = 0; i < policy.demote_after - 1; ++i) {
    auto state = cache.RecordShadow(key, {0}, Loss(), policy, 7);
    ASSERT_TRUE(state.ok());
    EXPECT_EQ(*state, EntryState::kPromoted);  // benefit of the doubt
  }
  auto state = cache.RecordShadow(key, {0}, Loss(), policy, 7);
  ASSERT_TRUE(state.ok());
  EXPECT_EQ(*state, EntryState::kDemoted);
  const auto entry = cache.Lookup(key, {0});
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->demoted_at_ms, 7);
  EXPECT_FALSE(entry->poisoned);  // slow is recoverable; wrong is not
}

// --- BackgroundSynthesizer: the lane around the state machine ---------------

// With the pool's only worker pinned, queued jobs sit in the bounded
// queue: the overflow drop must release its marker, and DrainAndStop
// must abort (not run) what is still queued.
TEST(BackgroundSynthesizerTest, DropAtCapacityAndDrainReleaseMarkers) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const PromotionPolicy policy;
  // Caller-counting pool: 2 => exactly one real worker thread.
  auto pool = std::make_unique<ThreadPool>(2);

  // Pin the worker with a normal-lane task so the background lane (which
  // yields to serving work by design) cannot drain yet.
  struct Pin {
    Mutex mu;
    CondVar cv;
    bool release SIA_GUARDED_BY(mu) = false;
  } pin;
  pool->Submit([&] {
    MutexLock lock(&pin.mu);
    while (!pin.release) pin.cv.Wait(&pin.mu);
  });

  BackgroundSynthesizer::Options options;
  options.rewrite.target_table = "t";
  options.queue_depth = 1;
  BackgroundSynthesizer synthesizer(&cache, pool.get(), options);

  const ExprPtr key_a = MakeKey(s);
  const ExprPtr key_b = Bind(Col("x") < Lit(9), s).value();
  BackgroundJob job_a;
  job_a.bound = key_a;
  job_a.cols = {0};
  job_a.joint = s;
  BackgroundJob job_b = job_a;
  job_b.bound = key_b;

  ASSERT_TRUE(cache.Decide(key_a, {0}, policy, false, 0).enqueue);
  ASSERT_TRUE(cache.Decide(key_b, {0}, policy, false, 0).enqueue);
  EXPECT_TRUE(synthesizer.Enqueue(std::move(job_a)));
  // Queue full: the job is shed and its key immediately re-queueable.
  EXPECT_FALSE(synthesizer.Enqueue(std::move(job_b)));
  EXPECT_TRUE(cache.Decide(key_b, {0}, policy, false, 0).enqueue);

  // Drain before the worker frees up: the queued job is aborted, never
  // run, and its marker released.
  synthesizer.DrainAndStop();
  EXPECT_TRUE(cache.Decide(key_a, {0}, policy, false, 0).enqueue);
  EXPECT_EQ(synthesizer.stats().enqueued, 1u);
  EXPECT_EQ(synthesizer.stats().dropped, 2u);
  EXPECT_EQ(synthesizer.stats().completed, 0u);

  // A drained synthesizer sheds everything (and still releases markers).
  BackgroundJob late;
  late.bound = key_a;
  late.cols = {0};
  late.joint = s;
  EXPECT_FALSE(synthesizer.Enqueue(std::move(late)));

  {
    MutexLock lock(&pin.mu);
    pin.release = true;
  }
  pin.cv.NotifyAll();
  // Join the pool while the synthesizer is still alive: a drainer task
  // it scheduled captures `this` and must not outlive it.
  pool.reset();
}

// An injected crash mid-job releases the marker: the key is immediately
// re-queueable, never wedged in kSynthesizing.
TEST(BackgroundSynthesizerTest, CrashedJobLeavesKeyRequeueable) {
  ASSERT_TRUE(FaultRegistry::Instance()
                  .ArmFromSpec("background.synth.crash=always")
                  .ok());
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  const PromotionPolicy policy;

  BackgroundSynthesizer::Options options;
  options.rewrite.target_table = "t";
  // Null pool: the dedicated drainer thread runs the job.
  BackgroundSynthesizer synthesizer(&cache, nullptr, options);

  ASSERT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  BackgroundJob job;
  job.bound = key;
  job.cols = {0};
  job.joint = s;
  ASSERT_TRUE(synthesizer.Enqueue(std::move(job)));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(30);
  while (synthesizer.stats().failed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  FaultRegistry::Instance().DisarmAll();
  EXPECT_EQ(synthesizer.stats().failed, 1u);
  EXPECT_EQ(cache.stats().synthesizing, 0u);
  EXPECT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  synthesizer.DrainAndStop();  // idempotent with the destructor's drain
}

// End to end on the dedicated thread: a real ladder run publishes the
// entry out of kSynthesizing (quarantined when a predicate was learned,
// promoted when there was nothing to learn) — and the marker is gone.
TEST(BackgroundSynthesizerTest, CompletedJobPublishesOutOfSynthesizing) {
  RewriteCache cache;
  const Schema s = OneColSchema();
  const ExprPtr key = MakeKey(s);
  const PromotionPolicy policy;

  BackgroundSynthesizer::Options options;
  options.rewrite.target_table = "t";
  options.budget_ms = 30000;
  BackgroundSynthesizer synthesizer(&cache, nullptr, options);

  ASSERT_TRUE(cache.Decide(key, {0}, policy, false, 0).enqueue);
  BackgroundJob job;
  job.bound = key;
  job.cols = {0};
  job.joint = s;
  ASSERT_TRUE(synthesizer.Enqueue(std::move(job)));

  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(60);
  while (synthesizer.stats().completed + synthesizer.stats().failed == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(synthesizer.stats().completed, 1u);
  EXPECT_EQ(cache.stats().synthesizing, 0u);
  const auto entry = cache.Lookup(key, {0});
  ASSERT_TRUE(entry.has_value());
  EXPECT_TRUE(entry->state == EntryState::kQuarantined ||
              entry->state == EntryState::kPromoted);
  if (entry->state == EntryState::kQuarantined) {
    EXPECT_NE(entry->predicate, nullptr);
  }
}

}  // namespace
}  // namespace sia
