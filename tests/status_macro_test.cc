// Regression tests for the SIA_ASSIGN_OR_RETURN / SIA_RETURN_IF_ERROR
// macro hygiene: unique __COUNTER__-keyed temporaries, same-line double
// expansion, move-only payloads, and error propagation. The companion
// negative test — that using SIA_ASSIGN_OR_RETURN as the un-braced body
// of an `if` fails to COMPILE — lives in scripts/check.sh, since a
// compile failure cannot be asserted from inside a test binary.

#include "common/status.h"

#include <memory>
#include <string>

#include <gtest/gtest.h>

namespace sia {
namespace {

Result<int> Ok(int v) { return v; }
Result<int> Fail(const std::string& msg) {
  return Status::InvalidArgument(msg);
}

Result<std::unique_ptr<int>> OkPtr(int v) {
  return std::make_unique<int>(v);
}

Result<int> UseTwoOnOneLine() {
  // Both expansions share a source line; under the old __LINE__-keyed
  // temporaries this redeclared the same identifier and failed to
  // compile (or, in nested scopes, silently read the wrong temporary).
  // clang-format off
  SIA_ASSIGN_OR_RETURN(const int a, Ok(20)); SIA_ASSIGN_OR_RETURN(const int b, Ok(22));
  // clang-format on
  return a + b;
}

Result<int> PropagatesFirstError() {
  SIA_ASSIGN_OR_RETURN(const int a, Fail("first"));
  SIA_ASSIGN_OR_RETURN(const int b, Ok(1));
  return a + b;
}

Result<int> MoveOnlyPayload() {
  SIA_ASSIGN_OR_RETURN(const std::unique_ptr<int> p, OkPtr(17));
  return *p;
}

Result<int> AssignsToExisting() {
  int out = 0;
  SIA_ASSIGN_OR_RETURN(out, Ok(5));
  SIA_ASSIGN_OR_RETURN(out, Ok(out + 2));
  return out;
}

Status ReturnIfErrorInUnbracedIf(bool fail) {
  // SIA_RETURN_IF_ERROR expands to a single do-while statement, so the
  // un-braced form is legal and must behave like a braced one.
  if (fail)
    SIA_RETURN_IF_ERROR(Status::Timeout("budget spent"));
  return Status::OK();
}

TEST(StatusMacroTest, TwoExpansionsOnOneLine) {
  const Result<int> r = UseTwoOnOneLine();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(StatusMacroTest, PropagatesError) {
  const Result<int> r = PropagatesFirstError();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.status().message(), "first");
}

TEST(StatusMacroTest, MoveOnlyPayload) {
  const Result<int> r = MoveOnlyPayload();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 17);
}

TEST(StatusMacroTest, AssignsToExistingVariable) {
  const Result<int> r = AssignsToExisting();
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 7);
}

TEST(StatusMacroTest, ReturnIfErrorUnbracedIf) {
  EXPECT_TRUE(ReturnIfErrorInUnbracedIf(false).ok());
  const Status st = ReturnIfErrorInUnbracedIf(true);
  ASSERT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kTimeout);
}

}  // namespace
}  // namespace sia
