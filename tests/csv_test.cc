#include <gtest/gtest.h>

#include "common/date.h"
#include "engine/csv.h"
#include "engine/tpch_gen.h"

namespace sia {
namespace {

Schema MixedSchema() {
  Schema s;
  s.AddColumn({"t", "id", DataType::kInteger, false});
  s.AddColumn({"t", "price", DataType::kDouble, false});
  s.AddColumn({"t", "shipped", DataType::kDate, false});
  s.AddColumn({"t", "flag", DataType::kBoolean, false});
  s.AddColumn({"t", "note", DataType::kInteger, true});
  return s;
}

TEST(CsvTest, ReadBasic) {
  const std::string csv =
      "id,price,shipped,flag,note\n"
      "1,2.5,1993-06-01,true,7\n"
      "2,0.25,1994-01-15,false,\n";
  auto table = ReadCsvString(MixedSchema(), csv);
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  ASSERT_EQ(table->row_count(), 2u);
  EXPECT_EQ(table->column(0).IntAt(1), 2);
  EXPECT_DOUBLE_EQ(table->column(1).DoubleAt(0), 2.5);
  EXPECT_EQ(table->column(2).IntAt(0), ParseDateToDay("1993-06-01").value());
  EXPECT_EQ(table->column(3).IntAt(0), 1);
  EXPECT_TRUE(table->column(4).IsNull(1));
  EXPECT_EQ(table->column(4).IntAt(0), 7);
}

TEST(CsvTest, HeaderValidation) {
  EXPECT_FALSE(ReadCsvString(MixedSchema(), "").ok());
  EXPECT_FALSE(
      ReadCsvString(MixedSchema(), "id,price,shipped,flag\n").ok());
  EXPECT_FALSE(
      ReadCsvString(MixedSchema(), "id,price,shipped,flag,wrong\n").ok());
  // Case-insensitive header accepted.
  EXPECT_TRUE(
      ReadCsvString(MixedSchema(), "ID,Price,SHIPPED,flag,note\n").ok());
}

TEST(CsvTest, FieldErrors) {
  const Schema s = MixedSchema();
  EXPECT_FALSE(ReadCsvString(s, "id,price,shipped,flag,note\nx,1,1993-01-01,true,1\n").ok());
  EXPECT_FALSE(ReadCsvString(s, "id,price,shipped,flag,note\n1,1,not-a-date,true,1\n").ok());
  EXPECT_FALSE(ReadCsvString(s, "id,price,shipped,flag,note\n1,1,1993-01-01,maybe,1\n").ok());
  // NULL in non-nullable column.
  EXPECT_FALSE(ReadCsvString(s, "id,price,shipped,flag,note\n,1,1993-01-01,true,1\n").ok());
  // Wrong arity.
  EXPECT_FALSE(ReadCsvString(s, "id,price,shipped,flag,note\n1,2\n").ok());
  // Quotes unsupported (explicit, not silent corruption).
  EXPECT_FALSE(ReadCsvString(s, "id,price,shipped,flag,note\n\"1\",1,1993-01-01,true,1\n").ok());
}

// Malformed / truncated / binary-ish inputs: every case must come back
// as a Status — never a crash, never a silently corrupted table. The
// whole suite runs under ASan+UBSan in scripts/check.sh.
TEST(CsvMalformedTest, UnterminatedQuote) {
  const Schema s = MixedSchema();
  // An opening quote with no closing quote (and no quote support at
  // all): rejected explicitly rather than split on the embedded comma.
  EXPECT_FALSE(ReadCsvString(
                   s, "id,price,shipped,flag,note\n\"1,2.5,1993-06-01,true,7\n")
                   .ok());
  EXPECT_FALSE(ReadCsvString(s, "\"id,price,shipped,flag,note\n").ok());
}

TEST(CsvMalformedTest, ShortAndTruncatedRows) {
  const Schema s = MixedSchema();
  // Row with too few fields.
  EXPECT_FALSE(
      ReadCsvString(s, "id,price,shipped,flag,note\n1,2.5,1993-06-01\n").ok());
  // File truncated mid-record (no trailing newline, row cut short).
  EXPECT_FALSE(
      ReadCsvString(s, "id,price,shipped,flag,note\n1,2.5,1993-06-01,true,7\n2,0.2").ok());
  // Header truncated mid-name.
  EXPECT_FALSE(ReadCsvString(s, "id,price,ship").ok());
}

TEST(CsvMalformedTest, NonNumericCells) {
  const Schema s = MixedSchema();
  // Trailing garbage must not silently truncate to the numeric prefix.
  const auto garbage_int =
      ReadCsvString(s, "id,price,shipped,flag,note\n12abc,2.5,1993-06-01,true,7\n");
  ASSERT_FALSE(garbage_int.ok());
  EXPECT_EQ(garbage_int.status().code(), StatusCode::kParseError);
  EXPECT_FALSE(
      ReadCsvString(s, "id,price,shipped,flag,note\n1,2.5x,1993-06-01,true,7\n").ok());
  EXPECT_FALSE(
      ReadCsvString(s, "id,price,shipped,flag,note\n1,2.5,1993-06-01,true,7z\n").ok());
  // Pathologically large exponent (stod throws out_of_range).
  EXPECT_FALSE(
      ReadCsvString(s, "id,price,shipped,flag,note\n1,1e99999,1993-06-01,true,7\n").ok());
}

TEST(CsvMalformedTest, EmbeddedNulBytes) {
  const Schema s = MixedSchema();
  // NUL inside a numeric cell: binary junk, not a shorter number.
  std::string csv = "id,price,shipped,flag,note\n1";
  csv += '\0';
  csv += "9,2.5,1993-06-01,true,7\n";
  const auto in_cell = ReadCsvString(s, csv);
  ASSERT_FALSE(in_cell.ok());
  EXPECT_EQ(in_cell.status().code(), StatusCode::kParseError);

  // NUL as the entire first cell.
  std::string lead = "id,price,shipped,flag,note\n";
  lead += '\0';
  lead += ",2.5,1993-06-01,true,7\n";
  EXPECT_FALSE(ReadCsvString(s, lead).ok());
}

TEST(CsvTest, SkipsBlankLines) {
  const std::string csv =
      "id,price,shipped,flag,note\n"
      "1,1.0,1993-06-01,true,1\n"
      "\n"
      "2,2.0,1993-06-02,false,2\n";
  auto table = ReadCsvString(MixedSchema(), csv);
  ASSERT_TRUE(table.ok());
  EXPECT_EQ(table->row_count(), 2u);
}

TEST(CsvTest, RoundTrip) {
  const std::string csv =
      "id,price,shipped,flag,note\n"
      "1,2.5,1993-06-01,true,7\n"
      "2,0.25,1994-01-15,false,\n"
      "3,-1.75,1992-02-29,true,-5\n";
  auto table = ReadCsvString(MixedSchema(), csv);
  ASSERT_TRUE(table.ok());
  auto text = WriteCsvString(*table);
  ASSERT_TRUE(text.ok());
  auto again = ReadCsvString(MixedSchema(), *text);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->row_count(), table->row_count());
  for (size_t r = 0; r < table->row_count(); ++r) {
    EXPECT_TRUE(table->RowAt(r) == again->RowAt(r)) << "row " << r;
  }
}

TEST(CsvTest, TpchRoundTripSample) {
  const TpchData data = GenerateTpch(0.0005, 5);
  auto text = WriteCsvString(data.orders);
  ASSERT_TRUE(text.ok());
  auto again = ReadCsvString(data.orders.schema(), *text);
  ASSERT_TRUE(again.ok());
  ASSERT_EQ(again->row_count(), data.orders.row_count());
  for (size_t r = 0; r < again->row_count(); r += 97) {
    EXPECT_TRUE(again->RowAt(r) == data.orders.RowAt(r));
  }
}

TEST(CsvTest, FileRoundTrip) {
  const TpchData data = GenerateTpch(0.0002, 6);
  const std::string path = ::testing::TempDir() + "/sia_csv_test.csv";
  ASSERT_TRUE(WriteCsvFile(data.orders, path).ok());
  auto again = ReadCsvFile(data.orders.schema(), path);
  ASSERT_TRUE(again.ok()) << again.status().ToString();
  EXPECT_EQ(again->row_count(), data.orders.row_count());
  EXPECT_FALSE(ReadCsvFile(data.orders.schema(), "/nonexistent/x.csv").ok());
}

}  // namespace
}  // namespace sia
