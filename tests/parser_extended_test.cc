// Extended SQL surface: BETWEEN / IN (and their negations), plus
// round-trip and binder interactions for the desugared forms.
#include <gtest/gtest.h>

#include "ir/binder.h"
#include "ir/evaluator.h"
#include "parser/parser.h"
#include "types/schema.h"

namespace sia {
namespace {

Schema OneCol() {
  Schema s;
  s.AddColumn({"", "x", DataType::kInteger, false});
  s.AddColumn({"", "y", DataType::kInteger, false});
  return s;
}

Result<TruthValue> EvalOn(const std::string& text, int64_t x, int64_t y) {
  auto parsed = ParseExpression(text);
  if (!parsed.ok()) return parsed.status();
  auto bound = Bind(*parsed, OneCol());
  if (!bound.ok()) return bound.status();
  return EvalPredicate(**bound, Tuple({Value::Integer(x), Value::Integer(y)}));
}

TEST(BetweenTest, DesugarsToRange) {
  auto e = ParseExpression("x BETWEEN 1 AND 5");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->ToString(), "x >= 1 AND x <= 5");
}

TEST(BetweenTest, InclusiveSemantics) {
  EXPECT_EQ(EvalOn("x BETWEEN 1 AND 5", 1, 0).value(), TruthValue::kTrue);
  EXPECT_EQ(EvalOn("x BETWEEN 1 AND 5", 5, 0).value(), TruthValue::kTrue);
  EXPECT_EQ(EvalOn("x BETWEEN 1 AND 5", 0, 0).value(), TruthValue::kFalse);
  EXPECT_EQ(EvalOn("x BETWEEN 1 AND 5", 6, 0).value(), TruthValue::kFalse);
}

TEST(BetweenTest, NotBetween) {
  EXPECT_EQ(EvalOn("x NOT BETWEEN 1 AND 5", 0, 0).value(), TruthValue::kTrue);
  EXPECT_EQ(EvalOn("x NOT BETWEEN 1 AND 5", 3, 0).value(),
            TruthValue::kFalse);
}

TEST(BetweenTest, ArithmeticOperands) {
  // x + y BETWEEN y - 1 AND y + 1  ==  -1 <= x <= 1
  EXPECT_EQ(EvalOn("x + y BETWEEN y - 1 AND y + 1", 0, 42).value(),
            TruthValue::kTrue);
  EXPECT_EQ(EvalOn("x + y BETWEEN y - 1 AND y + 1", 2, 42).value(),
            TruthValue::kFalse);
}

TEST(BetweenTest, InteractsWithConjunction) {
  auto e = ParseExpression("x BETWEEN 1 AND 5 AND y < 0");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "x >= 1 AND x <= 5 AND y < 0");
}

TEST(InTest, DesugarsToDisjunction) {
  auto e = ParseExpression("x IN (1, 3, 5)");
  ASSERT_TRUE(e.ok()) << e.status().ToString();
  EXPECT_EQ((*e)->ToString(), "x = 1 OR x = 3 OR x = 5");
}

TEST(InTest, Semantics) {
  EXPECT_EQ(EvalOn("x IN (1, 3, 5)", 3, 0).value(), TruthValue::kTrue);
  EXPECT_EQ(EvalOn("x IN (1, 3, 5)", 4, 0).value(), TruthValue::kFalse);
  EXPECT_EQ(EvalOn("x NOT IN (1, 3, 5)", 4, 0).value(), TruthValue::kTrue);
  EXPECT_EQ(EvalOn("x NOT IN (1, 3, 5)", 5, 0).value(), TruthValue::kFalse);
}

TEST(InTest, SingleMember) {
  auto e = ParseExpression("x IN (7)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(), "x = 7");
}

TEST(InTest, DateMembers) {
  auto e = ParseExpression("x IN ('1993-06-01', '1994-01-01')");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ((*e)->ToString(),
            "x = DATE '1993-06-01' OR x = DATE '1994-01-01'");
}

TEST(InTest, Errors) {
  EXPECT_FALSE(ParseExpression("x IN ()").ok());
  EXPECT_FALSE(ParseExpression("x IN (1, )").ok());
  EXPECT_FALSE(ParseExpression("x IN 1, 2").ok());
  EXPECT_FALSE(ParseExpression("x NOT 5").ok());
  EXPECT_FALSE(ParseExpression("x BETWEEN 1").ok());
  EXPECT_FALSE(ParseExpression("x BETWEEN 1 OR 2").ok());
}

TEST(InTest, InWhereClause) {
  auto q = ParseQuery(
      "SELECT * FROM lineitem WHERE l_quantity IN (1, 2) AND "
      "l_shipdate BETWEEN '1993-01-01' AND '1993-12-31'");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  ASSERT_NE(q->where, nullptr);
  // The desugared text must re-parse to the same tree.
  auto q2 = ParseQuery(q->ToString());
  ASSERT_TRUE(q2.ok()) << q->ToString();
  EXPECT_TRUE(Expr::Equal(q->where, q2->where));
}

}  // namespace
}  // namespace sia
