// Fault sweep: drives injected failures through the whole pipeline —
// solver checks, sample generation, SVM training, verification,
// counter-example search, table scans — and asserts the robustness
// contract: no crash, every injected failure surfaces as a non-OK
// Status or a lower degradation-ladder rung, and any result that IS
// produced matches the fault-free baseline exactly.
//
// Two modes:
//  * In-binary sweep (always runs): arms each known fault point in turn,
//    in `once` and `always` mode, over a small workload.
//  * Env-armed pass (runs when SIA_FAULTS is set, e.g. by
//    scripts/check.sh --fault-sweep): one pass over a larger workload
//    with the environment's fault spec re-armed; SIA_SWEEP_QUERIES
//    overrides the query count.
#include <chrono>
#include <cstdlib>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "common/deadline.h"
#include "common/fault_injection.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "parser/parser.h"
#include "rewrite/sia_rewriter.h"
#include "server/protocol.h"
#include "server/service.h"
#include "workload/querygen.h"

namespace sia {
namespace {

struct Baseline {
  size_t row_count = 0;
  uint64_t content_hash = 0;
};

class FaultSweepTest : public ::testing::Test {
 protected:
  void SetUp() override {
    FaultRegistry::Instance().DisarmAll();
    catalog_ = Catalog::TpchCatalog();
    data_ = GenerateTpch(0.002, 11);
    executor_.RegisterTable("lineitem", &data_.lineitem);
    executor_.RegisterTable("orders", &data_.orders);
  }
  void TearDown() override { FaultRegistry::Instance().DisarmAll(); }

  // Rewrite options sized for a sweep: small loop budget, and a per-query
  // wall-clock ceiling so an injected fault can never wedge the suite.
  RewriteOptions SweepOptions() const {
    RewriteOptions opts;
    opts.target_table = "lineitem";
    opts.synthesis.max_iterations = 6;
    opts.synthesis.initial_true_samples = 6;
    opts.synthesis.initial_false_samples = 6;
    opts.deadline = Deadline::FromNowMillis(20000);
    return opts;
  }

  // Fault-free reference results; generated with the registry disarmed.
  std::vector<Baseline> ComputeBaselines(
      const std::vector<GeneratedQuery>& queries) {
    FaultRegistry::Instance().DisarmAll();
    std::vector<Baseline> out;
    for (const GeneratedQuery& g : queries) {
      auto run = RunQuery(g.query, catalog_, executor_);
      EXPECT_TRUE(run.ok()) << run.status().ToString();
      out.push_back(run.ok() ? Baseline{run->row_count, run->content_hash}
                             : Baseline{});
    }
    return out;
  }

  // One sweep pass with whatever is currently armed: every query must
  // rewrite without a hard error (the ladder absorbs injected failures)
  // and every successful execution must match the baseline bit-for-bit.
  // Execution-side faults (engine.scan) may fail the run itself — that
  // must be a clean kInternal, never a crash or a wrong answer.
  void SweepPass(const std::vector<GeneratedQuery>& queries,
                 const std::vector<Baseline>& baselines,
                 const std::string& label) {
    for (size_t i = 0; i < queries.size(); ++i) {
      RewriteOptions opts = SweepOptions();
      auto outcome = RewriteQuery(queries[i].query, catalog_, opts);
      ASSERT_TRUE(outcome.ok())
          << label << ": rewrite must degrade, not fail: "
          << outcome.status().ToString() << "\n"
          << queries[i].sql;
      if (!outcome->degradation.empty()) {
        EXPECT_NE(outcome->rung, RewriteRung::kFull) << label;
      }

      auto paranoid = RunRewriteParanoid(queries[i].query,
                                         outcome->rewritten, catalog_,
                                         executor_);
      if (!paranoid.ok()) {
        // Only an execution-side fault can fail the paranoid run (the
        // original query's own scan failed). It must be the injected
        // error, not junk.
        EXPECT_EQ(paranoid.status().code(), StatusCode::kInternal)
            << label << ": " << paranoid.status().ToString();
        continue;
      }
      EXPECT_EQ(paranoid->output.row_count, baselines[i].row_count)
          << label << "\n" << queries[i].sql;
      EXPECT_EQ(paranoid->output.content_hash, baselines[i].content_hash)
          << label << "\n" << queries[i].sql;
    }
  }

  Catalog catalog_;
  TpchData data_;
  Executor executor_;
};

TEST_F(FaultSweepTest, EveryPointInOnceAndAlwaysMode) {
  auto queries = GenerateWorkload(catalog_, 2);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  const std::vector<Baseline> baselines = ComputeBaselines(*queries);

  for (const std::string& point : FaultRegistry::KnownPoints()) {
    for (const char* mode : {"once", "always"}) {
      SCOPED_TRACE(point + "=" + mode);
      FaultRegistry::Instance().DisarmAll();
      ASSERT_TRUE(FaultRegistry::Instance()
                      .ArmFromSpec(point + "=" + mode)
                      .ok());
      SweepPass(*queries, baselines, point + "=" + mode);
    }
  }

  // The process must be fully healthy once disarmed.
  FaultRegistry::Instance().DisarmAll();
  SweepPass(*queries, baselines, "disarmed");
}

TEST_F(FaultSweepTest, MixedNthLatencyProbabilisticModes) {
  auto queries = GenerateWorkload(catalog_, 2);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  const std::vector<Baseline> baselines = ComputeBaselines(*queries);

  ASSERT_TRUE(FaultRegistry::Instance()
                  .ArmFromSpec("smt.check=nth:2,engine.scan=latency:1,"
                               "verify.cex=prob:0.5")
                  .ok());
  SweepPass(*queries, baselines, "mixed");
  EXPECT_GT(FaultRegistry::Instance().hits("smt.check"), 0u);
}

TEST_F(FaultSweepTest, LadderDegradesToIntervalWhenLearnerIsDown) {
  // With SVM training permanently broken, rungs 1-2 cannot produce a
  // predicate; the interval rung must still find the single-column
  // reduction for this motivating-example query.
  const std::string sql =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01'";
  ASSERT_TRUE(
      FaultRegistry::Instance().ArmFromSpec("learn.train=always").ok());

  RewriteOptions opts = SweepOptions();
  auto outcome = RewriteQuery(sql, catalog_, opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  EXPECT_FALSE(outcome->degradation.empty());
  if (outcome->changed()) {
    EXPECT_EQ(outcome->rung, RewriteRung::kInterval);
    auto paranoid = RunRewriteParanoid(ParseQuery(sql).value(),
                                       outcome->rewritten, catalog_,
                                       executor_);
    ASSERT_TRUE(paranoid.ok()) << paranoid.status().ToString();
    EXPECT_TRUE(paranoid->rewrite_used) << paranoid->note;
  }
}

TEST_F(FaultSweepTest, ParanoidModeDiscardsAWrongRewrite) {
  // Simulate a learned predicate that slipped past verification wrongly:
  // conjoin a filter that visibly changes the result. Paranoid execution
  // must detect the mismatch and return the original's rows.
  const std::string sql =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND o_orderdate < '1995-06-01'";
  auto original = ParseQuery(sql);
  ASSERT_TRUE(original.ok());
  auto wrong = ParseQuery(
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND o_orderdate < '1995-06-01' AND l_orderkey < 0");
  ASSERT_TRUE(wrong.ok());

  auto base = RunQuery(*original, catalog_, executor_);
  ASSERT_TRUE(base.ok());
  ASSERT_GT(base->row_count, 0u);  // the wrong filter must actually bite

  auto paranoid =
      RunRewriteParanoid(*original, *wrong, catalog_, executor_);
  ASSERT_TRUE(paranoid.ok()) << paranoid.status().ToString();
  EXPECT_TRUE(paranoid->mismatch);
  EXPECT_FALSE(paranoid->rewrite_used);
  EXPECT_EQ(paranoid->output.row_count, base->row_count);
  EXPECT_EQ(paranoid->output.content_hash, base->content_hash);
}

TEST_F(FaultSweepTest, BackgroundLearningNeverWedgesUnderFaults) {
  // The background lane's robustness contract, per fault: every request
  // is still answered OK with the same digests on every serve (clients
  // never see a learning-loop failure), and after a drain no key is left
  // wedged in kSynthesizing — a crashed job releases its marker and the
  // key stays re-queueable.
  server::ServiceOptions options;
  options.scale_factor = 0.002;
  options.max_iterations = 6;
  options.background_learning = true;
  options.shadow_sample_rate = 1.0;
  options.promote_after = 1;
  options.background_budget_ms = 5000;

  auto queries = GenerateWorkload(catalog_, 3);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();

  for (const char* spec : {"background.synth.crash=always",
                           "background.synth.latency=latency:50",
                           "promote.bad_rewrite=always"}) {
    SCOPED_TRACE(spec);
    FaultRegistry::Instance().DisarmAll();
    ASSERT_TRUE(FaultRegistry::Instance().ArmFromSpec(spec).ok());

    server::QueryService service(options);
    service.StartBackground(nullptr);
    std::vector<server::QueryReply> first(queries->size());
    for (int pass = 0; pass < 3; ++pass) {
      for (size_t i = 0; i < queries->size(); ++i) {
        auto parsed = server::ParseResponse(
            service.Handle("QUERY\n" + (*queries)[i].sql, 0));
        ASSERT_TRUE(parsed.ok());
        ASSERT_EQ(parsed->kind, server::ResponseKind::kOk)
            << parsed->error.ToString();
        ASSERT_TRUE(parsed->query.has_value());
        if (pass == 0) {
          first[i] = *parsed->query;
          ASSERT_TRUE(first[i].executed);
        } else {
          EXPECT_EQ(parsed->query->rows, first[i].rows);
          EXPECT_EQ(parsed->query->content_hash, first[i].content_hash);
        }
      }
      // Let background jobs land between passes so later serves actually
      // meet published (or force-promoted) entries.
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    service.DrainBackground();
    EXPECT_EQ(service.cache().stats().synthesizing, 0u)
        << "a key wedged in kSynthesizing";
  }
  FaultRegistry::Instance().DisarmAll();
}

TEST_F(FaultSweepTest, EnvArmedSweep) {
  const char* env = std::getenv("SIA_FAULTS");
  if (env == nullptr || env[0] == '\0') {
    GTEST_SKIP() << "SIA_FAULTS not set";
  }
  size_t count = 12;
  if (const char* n = std::getenv("SIA_SWEEP_QUERIES")) {
    const long parsed = std::strtol(n, nullptr, 10);
    if (parsed > 0) count = static_cast<size_t>(parsed);
  }

  // Workload generation and baselines run fault-free (SetUp disarmed the
  // env spec); the pass below re-arms it.
  auto queries = GenerateWorkload(catalog_, count);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  const std::vector<Baseline> baselines = ComputeBaselines(*queries);

  ASSERT_TRUE(FaultRegistry::Instance().ArmFromSpec(env).ok())
      << "bad SIA_FAULTS: " << env;
  SweepPass(*queries, baselines, std::string("env:") + env);
}

TEST_F(FaultSweepTest, BackgroundLearningEnvArmedSweep) {
  // The background-learning serving loop under the environment's fault
  // spec (scripts/check.sh --fault-sweep drives every known point
  // through here): requests either succeed with digests identical to
  // their first serve or surface the injected failure as a clean ERROR
  // frame, and a drain leaves no key wedged in kSynthesizing.
  const char* env = std::getenv("SIA_FAULTS");
  if (env == nullptr || env[0] == '\0') {
    GTEST_SKIP() << "SIA_FAULTS not set";
  }

  server::ServiceOptions options;
  options.scale_factor = 0.002;
  options.max_iterations = 6;
  options.background_learning = true;
  options.shadow_sample_rate = 1.0;
  options.promote_after = 1;
  options.background_budget_ms = 5000;

  auto queries = GenerateWorkload(catalog_, 2);
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();

  // Service construction (data generation) runs fault-free; the serving
  // loop, background jobs, and the drain all run under the spec.
  server::QueryService service(options);
  service.StartBackground(nullptr);
  ASSERT_TRUE(FaultRegistry::Instance().ArmFromSpec(env).ok())
      << "bad SIA_FAULTS: " << env;

  std::vector<std::optional<server::QueryReply>> first(queries->size());
  for (int pass = 0; pass < 3; ++pass) {
    for (size_t i = 0; i < queries->size(); ++i) {
      auto parsed = server::ParseResponse(
          service.Handle("QUERY\n" + (*queries)[i].sql, 0));
      ASSERT_TRUE(parsed.ok());
      if (parsed->kind != server::ResponseKind::kOk) {
        // Execution-side faults may fail the request; it must surface as
        // a clean ERROR frame, never a crash or a wrong answer.
        ASSERT_EQ(parsed->kind, server::ResponseKind::kError);
        continue;
      }
      ASSERT_TRUE(parsed->query.has_value());
      if (!first[i].has_value()) {
        first[i] = *parsed->query;
      } else if (parsed->query->executed && first[i]->executed) {
        EXPECT_EQ(parsed->query->rows, first[i]->rows);
        EXPECT_EQ(parsed->query->content_hash, first[i]->content_hash);
      }
    }
    // OBSERVE runs under the same spec: an armed obs.observe.latency
    // stalls or fails the telemetry read, which must surface as a slow
    // OK or a clean ERROR frame — never a crash, never a wedged loop.
    auto observed = server::ParseResponse(service.Handle("OBSERVE", 0));
    ASSERT_TRUE(observed.ok());
    EXPECT_TRUE(observed->kind == server::ResponseKind::kOk ||
                observed->kind == server::ResponseKind::kError)
        << "OBSERVE under " << env;
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  service.DrainBackground();
  EXPECT_EQ(service.cache().stats().synthesizing, 0u)
      << "a key wedged in kSynthesizing under " << env;
}

}  // namespace
}  // namespace sia
