// Tests for the cost-aware rewriting extension: sampled selectivity
// estimation and rewrite admission, plus the synthesis-result cache.
#include <gtest/gtest.h>

#include "catalog/catalog.h"
#include "engine/cost_aware_rewriter.h"
#include "engine/selectivity.h"
#include "engine/tpch_gen.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "parser/parser.h"
#include "rewrite/rewrite_cache.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT

// --- EstimateSelectivity -----------------------------------------------------

class SelectivityTest : public ::testing::Test {
 protected:
  void SetUp() override { data_ = GenerateTpch(0.005, 21); }
  TpchData data_;
};

TEST_F(SelectivityTest, ExactScanMatchesMeasure) {
  const Schema& s = data_.lineitem.schema();
  ExprPtr p = Bind(Col("l_quantity") <= Lit(25), s).value();
  auto exact = EstimateSelectivity(data_.lineitem, p, 0);
  ASSERT_TRUE(exact.ok());
  EXPECT_EQ(exact->sampled_rows, data_.lineitem.row_count());
  EXPECT_DOUBLE_EQ(exact->error_bound, 0);
  EXPECT_NEAR(exact->selectivity, 0.5, 0.03);  // quantity uniform 1..50
}

TEST_F(SelectivityTest, SampleTracksExactWithinErrorBound) {
  const Schema& s = data_.lineitem.schema();
  const std::vector<ExprPtr> predicates = {
      Bind(Col("l_quantity") <= Lit(10), s).value(),
      Bind(Col("l_shipdate") < Expr::DateLit(9000), s).value(),
      Bind(Col("l_commitdate") - Col("l_shipdate") < Lit(0), s).value(),
  };
  for (const ExprPtr& p : predicates) {
    auto exact = EstimateSelectivity(data_.lineitem, p, 0);
    auto sampled = EstimateSelectivity(data_.lineitem, p, 500);
    ASSERT_TRUE(exact.ok() && sampled.ok());
    EXPECT_EQ(sampled->sampled_rows, 500u);
    EXPECT_GT(sampled->error_bound, 0);
    EXPECT_NEAR(sampled->selectivity, exact->selectivity,
                sampled->error_bound * 2 + 0.02)
        << p->ToString();
  }
}

TEST_F(SelectivityTest, EmptyTable) {
  Table empty(data_.lineitem.schema());
  ExprPtr p =
      Bind(Col("l_quantity") <= Lit(10), empty.schema()).value();
  auto est = EstimateSelectivity(empty, p);
  ASSERT_TRUE(est.ok());
  EXPECT_EQ(est->sampled_rows, 0u);
  EXPECT_DOUBLE_EQ(est->selectivity, 0);
}

TEST_F(SelectivityTest, SampleLargerThanTable) {
  const Schema& s = data_.lineitem.schema();
  ExprPtr p = Bind(Col("l_quantity") <= Lit(50), s).value();
  auto est = EstimateSelectivity(data_.lineitem, p,
                                 data_.lineitem.row_count() * 10);
  ASSERT_TRUE(est.ok());
  EXPECT_DOUBLE_EQ(est->selectivity, 1.0);
}

// --- Cost-aware rewriting -----------------------------------------------------

TEST_F(SelectivityTest, CostAwareAdmitsSelectiveRewrite) {
  const Catalog catalog = Catalog::TpchCatalog();
  // The motivating query: learned predicate selectivity ~0.14.
  auto query = ParseQuery(
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01' "
      "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10");
  ASSERT_TRUE(query.ok());
  CostAwareOptions opts;
  opts.rewrite.target_table = "lineitem";
  opts.max_selectivity = 0.9;
  auto outcome =
      RewriteQueryCostAware(*query, catalog, data_.lineitem, opts);
  ASSERT_TRUE(outcome.ok()) << outcome.status().ToString();
  ASSERT_TRUE(outcome->base.changed());
  EXPECT_FALSE(outcome->rejected_by_cost)
      << "selectivity " << outcome->estimate.selectivity;
  // How far the loop converges varies with solver budgets; the learned
  // predicate is at worst commit-ship < 29 (selectivity ~0.75) and at
  // best also bounds l_shipdate (~0.14).
  EXPECT_LT(outcome->estimate.selectivity, 0.9);
  // FinalQuery picks the rewritten form.
  EXPECT_NE(outcome->FinalQuery(*query).ToString(), query->ToString());
}

TEST_F(SelectivityTest, CostAwareRejectsVacuousRewrite) {
  const Catalog catalog = Catalog::TpchCatalog();
  auto query = ParseQuery(
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01' "
      "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10");
  ASSERT_TRUE(query.ok());
  CostAwareOptions opts;
  opts.rewrite.target_table = "lineitem";
  opts.max_selectivity = 0.0;  // reject everything
  auto outcome =
      RewriteQueryCostAware(*query, catalog, data_.lineitem, opts);
  ASSERT_TRUE(outcome.ok());
  ASSERT_TRUE(outcome->base.changed());
  EXPECT_TRUE(outcome->rejected_by_cost);
  EXPECT_EQ(outcome->FinalQuery(*query).ToString(), query->ToString());
}

// --- RewriteCache ---------------------------------------------------------------

TEST(RewriteCacheTest, MissThenHit) {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, false});
  ExprPtr p = Bind((Col("a") - Col("b") < Lit(20)) && (Col("b") < Lit(0)), s)
                  .value();

  RewriteCache cache;
  EXPECT_FALSE(cache.Lookup(p, {0}).has_value());

  int synth_calls = 0;
  auto synthesize = [&]() {
    ++synth_calls;
    return Synthesize(p, s, {0});
  };
  auto first = cache.GetOrSynthesize(p, {0}, synthesize);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(synth_calls, 1);
  auto second = cache.GetOrSynthesize(p, {0}, synthesize);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(synth_calls, 1);  // served from cache
  EXPECT_TRUE(Expr::Equal(first->predicate, second->predicate));

  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 2u);  // the explicit Lookup + the first GetOr
  EXPECT_EQ(stats.entries, 1u);
}

TEST(RewriteCacheTest, DistinctColumnSetsAreDistinctKeys) {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, false});
  ExprPtr p = Bind(Col("a") < Col("b"), s).value();
  RewriteCache cache;
  cache.Insert(p, {0}, {SynthesisStatus::kNone, nullptr});
  EXPECT_TRUE(cache.Lookup(p, {0}).has_value());
  EXPECT_FALSE(cache.Lookup(p, {1}).has_value());
}

TEST(RewriteCacheTest, StructurallyEqualPredicatesShareEntries) {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, false});
  ExprPtr p1 = Bind(Col("a") < Col("b"), s).value();
  ExprPtr p2 = Bind(Col("a") < Col("b"), s).value();  // distinct tree
  RewriteCache cache;
  cache.Insert(p1, {0}, {SynthesisStatus::kValid, p1});
  EXPECT_TRUE(cache.Lookup(p2, {0}).has_value());
}

TEST(RewriteCacheTest, ClearResets) {
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  ExprPtr p = Bind(Col("a") < Lit(0), s).value();
  RewriteCache cache;
  cache.Insert(p, {0}, {SynthesisStatus::kNone, nullptr});
  cache.Clear();
  EXPECT_FALSE(cache.Lookup(p, {0}).has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

}  // namespace
}  // namespace sia
