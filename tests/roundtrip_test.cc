// Round-trip properties: printing an expression and re-parsing it must
// reproduce the identical tree (the rewriter emits rewritten queries as
// SQL text, so ToString must be a faithful serialization).
#include <gtest/gtest.h>

#include "common/rng.h"
#include "ir/builder.h"
#include "ir/expr.h"
#include "parser/parser.h"

namespace sia {
namespace {

// Random UNBOUND expression over plain column names (bound trees print
// qualified names and carry indices, which re-parsing cannot restore).
ExprPtr RandomScalar(Rng& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.4)) {
    switch (rng.Uniform(0, 2)) {
      case 0:
        return Expr::Column("", std::string(1, "xyz"[rng.Uniform(0, 2)]));
      case 1:
        return Expr::IntLit(rng.Uniform(-100, 100));
      default:
        return Expr::DateLit(rng.Uniform(8000, 11000));
    }
  }
  const ArithOp ops[] = {ArithOp::kAdd, ArithOp::kSub, ArithOp::kMul,
                         ArithOp::kDiv};
  return Expr::Arith(ops[rng.Uniform(0, 3)], RandomScalar(rng, depth - 1),
                     RandomScalar(rng, depth - 1));
}

ExprPtr RandomPredicate(Rng& rng, int depth) {
  if (depth <= 0 || rng.Bernoulli(0.3)) {
    return Expr::Compare(static_cast<CompareOp>(rng.Uniform(0, 5)),
                         RandomScalar(rng, 2), RandomScalar(rng, 2));
  }
  if (rng.Bernoulli(0.15)) return Expr::Not(RandomPredicate(rng, depth - 1));
  return Expr::Logic(rng.Bernoulli(0.5) ? LogicOp::kAnd : LogicOp::kOr,
                     RandomPredicate(rng, depth - 1),
                     RandomPredicate(rng, depth - 1));
}

class ExpressionRoundTrip : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExpressionRoundTrip, PrintParsePreservesStructure) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 200; ++trial) {
    ExprPtr original = RandomPredicate(rng, 4);
    const std::string text = original->ToString();
    auto reparsed = ParseExpression(text);
    ASSERT_TRUE(reparsed.ok())
        << text << " : " << reparsed.status().ToString();
    EXPECT_TRUE(Expr::Equal(original, *reparsed))
        << "original: " << text
        << "\nreparsed: " << (*reparsed)->ToString();
  }
}

TEST_P(ExpressionRoundTrip, PrintIsAFixpoint) {
  Rng rng(GetParam() ^ 0xABCD);
  for (int trial = 0; trial < 200; ++trial) {
    ExprPtr original = RandomPredicate(rng, 4);
    const std::string once = original->ToString();
    auto reparsed = ParseExpression(once);
    ASSERT_TRUE(reparsed.ok()) << once;
    EXPECT_EQ((*reparsed)->ToString(), once);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExpressionRoundTrip,
                         ::testing::Values(1, 2, 3, 4));

TEST(QueryRoundTrip, GeneratedScalarsAndPredicates) {
  Rng rng(99);
  for (int trial = 0; trial < 100; ++trial) {
    ParsedQuery q;
    SelectItem star;
    star.is_star = true;
    q.select_list = {star};
    q.tables = {"lineitem", "orders"};
    q.where = RandomPredicate(rng, 3);
    const std::string text = q.ToString();
    auto reparsed = ParseQuery(text);
    ASSERT_TRUE(reparsed.ok()) << text;
    EXPECT_TRUE(Expr::Equal(q.where, reparsed->where)) << text;
    EXPECT_EQ(reparsed->tables, q.tables);
  }
}

}  // namespace
}  // namespace sia
