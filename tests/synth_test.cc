#include <gtest/gtest.h>

#include "common/date.h"
#include "ir/analysis.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "ir/evaluator.h"
#include "synth/sample_generator.h"
#include "synth/synthesizer.h"
#include "synth/verifier.h"

namespace sia {
namespace {

using namespace dsl;  // NOLINT: expression-builder operators in tests

// A three-integer-column schema mirroring the paper's §3.2 walkthrough:
// a1 = l_commitdate, a2 = l_shipdate, b1 = o_orderdate (already
// normalized to integers with 1993-06-01 as origin).
Schema Abc() {
  Schema s;
  s.AddColumn({"t", "a1", DataType::kInteger, false});
  s.AddColumn({"t", "a2", DataType::kInteger, false});
  s.AddColumn({"t", "b1", DataType::kInteger, false});
  return s;
}

// The §3.2 predicate: a2 - b1 < 20 AND a1 - a2 < a2 - b1 + 10 AND b1 < 0.
ExprPtr MotivatingPredicate() {
  using namespace dsl;
  return (Col("a2") - Col("b1") < Lit(20)) &&
         (Col("a1") - Col("a2") < Col("a2") - Col("b1") + Lit(10)) &&
         (Col("b1") < Lit(0));
}

ExprPtr BindOrDie(const ExprPtr& e, const Schema& s) {
  auto r = Bind(e, s);
  EXPECT_TRUE(r.ok()) << r.status().ToString();
  return r.value();
}

// --- SampleGenerator -----------------------------------------------------

class SampleGeneratorTest : public ::testing::Test {
 protected:
  Schema schema_ = Abc();
  ExprPtr pred_ = BindOrDie(MotivatingPredicate(), schema_);
};

TEST_F(SampleGeneratorTest, TrueSamplesSatisfyPredicateWithWitness) {
  SampleGenerator gen(pred_, schema_, {0, 1});
  auto samples = gen.GenerateTrue(10);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  ASSERT_EQ(samples->size(), 10u);
  // Every TRUE sample must be a feasible restriction: some b1 completes it.
  for (const Tuple& t : *samples) {
    bool found = false;
    for (int64_t b1 = -2000; b1 <= 2000 && !found; ++b1) {
      Tuple full({t.at(0), t.at(1), Value::Integer(b1)});
      found = Satisfies(*pred_, full).value();
    }
    EXPECT_TRUE(found) << "no witness for " << t.ToString();
  }
}

TEST_F(SampleGeneratorTest, FalseSamplesAreUnsatisfactionTuples) {
  SampleGenerator gen(pred_, schema_, {0, 1});
  auto samples = gen.GenerateFalse(8);
  ASSERT_TRUE(samples.ok()) << samples.status().ToString();
  ASSERT_EQ(samples->size(), 8u);
  // No b1 in a wide range may complete a FALSE sample. (The witness-free
  // property is guaranteed by the solver for ALL b1; we spot-check.)
  for (const Tuple& t : *samples) {
    for (int64_t b1 = -3000; b1 <= 3000; b1 += 7) {
      Tuple full({t.at(0), t.at(1), Value::Integer(b1)});
      EXPECT_FALSE(Satisfies(*pred_, full).value())
          << t.ToString() << " with b1=" << b1;
    }
  }
}

TEST_F(SampleGeneratorTest, SamplesAreDistinct) {
  SampleGenerator gen(pred_, schema_, {0, 1});
  auto samples = gen.GenerateTrue(20);
  ASSERT_TRUE(samples.ok());
  for (size_t i = 0; i < samples->size(); ++i) {
    for (size_t j = i + 1; j < samples->size(); ++j) {
      EXPECT_FALSE((*samples)[i] == (*samples)[j])
          << "duplicate sample at " << i << "," << j;
    }
  }
}

TEST_F(SampleGeneratorTest, CounterTrueRespectsBothPredicates) {
  SampleGenerator gen(pred_, schema_, {0, 1});
  // A deliberately too-strong learned predicate: a1 > 1000.
  ExprPtr learned = BindOrDie(Col("a1") > Lit(1000), schema_);
  auto counter = gen.CounterTrue(learned, 5);
  ASSERT_TRUE(counter.ok()) << counter.status().ToString();
  ASSERT_FALSE(counter->empty());
  for (const Tuple& t : *counter) {
    // Rejected by the learned predicate...
    EXPECT_LE(t.at(0).AsInt(), 1000);
  }
}

TEST_F(SampleGeneratorTest, CounterFalseFindsAcceptedUnsatTuples) {
  SampleGenerator gen(pred_, schema_, {0, 1});
  // TRUE accepts everything, so every unsatisfaction tuple is accepted.
  ExprPtr trivial = Expr::BoolLit(true);
  auto counter = gen.CounterFalse(trivial, 5);
  ASSERT_TRUE(counter.ok()) << counter.status().ToString();
  EXPECT_EQ(counter->size(), 5u);
}

TEST_F(SampleGeneratorTest, ExhaustionOnFiniteSpace) {
  // a1 in {1,2,3}: exactly three satisfaction tuples over {a1}.
  using namespace dsl;
  ExprPtr p = BindOrDie(
      (Col("a1") >= Lit(1)) && (Col("a1") <= Lit(3)) && (Col("b1") > Lit(0)),
      schema_);
  SampleGenerator gen(p, schema_, {0});
  auto samples = gen.GenerateTrue(10);
  ASSERT_TRUE(samples.ok());
  EXPECT_EQ(samples->size(), 3u);
  EXPECT_TRUE(gen.exhausted());
}

// --- Verifier ---------------------------------------------------------------

TEST(VerifierTest, AcceptsWeakerPredicate) {
  Schema s = Abc();
  ExprPtr p = BindOrDie(Col("a1") > Lit(10), s);
  ExprPtr weaker = BindOrDie(Col("a1") > Lit(5), s);
  auto r = VerifyImplies(p, weaker, s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, VerifyResult::kValid);
}

TEST(VerifierTest, RejectsStrongerPredicate) {
  Schema s = Abc();
  ExprPtr p = BindOrDie(Col("a1") > Lit(10), s);
  ExprPtr stronger = BindOrDie(Col("a1") > Lit(20), s);
  auto r = VerifyImplies(p, stronger, s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, VerifyResult::kInvalid);
}

TEST(VerifierTest, ThreeValuedLogicNullable) {
  // With a nullable column, x > 5 does NOT imply x > 5 OR x <= 5 ... it
  // does; but x = x is not implied by TRUE under 3VL. Check a case where
  // NULL-ness matters: p = (x > 5), candidate = (x > 5 OR x <= 5).
  // For non-null x the candidate is a tautology; for NULL x both p and
  // the candidate evaluate to UNKNOWN, so validity still holds (p never
  // accepts the NULL tuple).
  Schema s;
  s.AddColumn({"t", "x", DataType::kInteger, true});
  s.AddColumn({"t", "y", DataType::kInteger, true});
  using namespace dsl;
  ExprPtr p = BindOrDie(Col("x") > Lit(5), s);
  ExprPtr taut = BindOrDie((Col("x") > Lit(5)) || (Col("x") <= Lit(5)), s);
  auto r1 = VerifyImplies(p, taut, s);
  ASSERT_TRUE(r1.ok());
  EXPECT_EQ(*r1, VerifyResult::kValid);

  // TRUE does NOT imply the tautology under 3VL: the all-NULL tuple
  // satisfies TRUE but the "tautology" evaluates to UNKNOWN.
  auto r2 = VerifyImplies(Expr::BoolLit(true), taut, s);
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(*r2, VerifyResult::kInvalid);
}

TEST(VerifierTest, EquivalenceBothWays) {
  Schema s = Abc();
  using namespace dsl;
  ExprPtr a = BindOrDie(Col("a1") + Lit(1) > Lit(11), s);
  ExprPtr b = BindOrDie(Col("a1") > Lit(10), s);
  auto r = VerifyEquivalent(a, b, s);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, VerifyResult::kValid);
}

// --- Synthesizer: the paper's §3.2 walkthrough -----------------------------

TEST(SynthesizerTest, MotivatingExampleLearnsValidPredicate) {
  Schema s = Abc();
  ExprPtr p = BindOrDie(MotivatingPredicate(), s);
  auto result = Synthesize(p, s, {0, 1});
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  ASSERT_TRUE(result->has_predicate())
      << "status=" << SynthesisStatusName(result->status);

  // The synthesized predicate must be implied by p (validity).
  auto valid = VerifyImplies(p, result->predicate, s);
  ASSERT_TRUE(valid.ok());
  EXPECT_EQ(*valid, VerifyResult::kValid)
      << "learned: " << result->predicate->ToString();

  // And must only use columns a1, a2.
  EXPECT_TRUE(UsesOnlyColumns(result->predicate, {0, 1}))
      << result->predicate->ToString();
}

TEST(SynthesizerTest, MotivatingExampleApproachesOptimal) {
  // The optimal reduction of the paper's predicate to (a1, a2) is
  // a1 - a2 < 29 (equivalently a1 - a2 + 29 > 0 ... with strictness
  // depending on integer boundaries). Verify our result is implied by
  // the known-optimal form OR equals it: i.e. known-optimal implies ours.
  Schema s = Abc();
  ExprPtr p = BindOrDie(MotivatingPredicate(), s);
  auto result = Synthesize(p, s, {0, 1});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->has_predicate());

  using namespace dsl;
  ExprPtr known = BindOrDie(Col("a1") - Col("a2") < Lit(29), s);
  // `known` is a valid reduction; the optimal predicate is implied by
  // every valid reduction... (Def. 3: optimal implies all valid). So if
  // ours is optimal, ours => known.
  if (result->status == SynthesisStatus::kOptimal) {
    auto r = VerifyImplies(result->predicate, known, s);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, VerifyResult::kValid)
        << "learned " << result->predicate->ToString()
        << " should imply a1 - a2 < 29";
  }
}

TEST(SynthesizerTest, SingleColumnReduction) {
  // p: a1 - b1 < 20 AND b1 < 0  =>  over {a1}: a1 < 20 (optimal: a1 <= 18
  // with integers: a1 - b1 <= 19, b1 <= -1 -> a1 <= 18).
  Schema s = Abc();
  using namespace dsl;
  ExprPtr p = BindOrDie((Col("a1") - Col("b1") < Lit(20)) &&
                            (Col("b1") < Lit(0)),
                        s);
  auto result = Synthesize(p, s, {0});
  ASSERT_TRUE(result.ok());
  ASSERT_TRUE(result->has_predicate());
  auto valid = VerifyImplies(p, result->predicate, s);
  ASSERT_TRUE(valid.ok());
  EXPECT_EQ(*valid, VerifyResult::kValid);
  EXPECT_TRUE(UsesOnlyColumns(result->predicate, {0}));

  // Sanity: (18) accepted, (1000) rejected for an optimal result.
  if (result->status == SynthesisStatus::kOptimal) {
    Tuple in({Value::Integer(18), Value::Integer(0), Value::Integer(0)});
    Tuple out({Value::Integer(1000), Value::Integer(0), Value::Integer(0)});
    EXPECT_TRUE(Satisfies(*result->predicate, in).value());
    EXPECT_FALSE(Satisfies(*result->predicate, out).value());
  }
}

TEST(SynthesizerTest, UnsatisfiablePredicateYieldsFalse) {
  Schema s = Abc();
  using namespace dsl;
  ExprPtr p = BindOrDie((Col("a1") > Lit(10)) && (Col("a1") < Lit(5)), s);
  auto result = Synthesize(p, s, {0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SynthesisStatus::kOptimal);
  ASSERT_TRUE(result->has_predicate());
  EXPECT_TRUE(result->predicate->IsFalseLiteral());
}

TEST(SynthesizerTest, NoUnsatTuplesMeansNoPredicate) {
  // p: a1 = b1. For any a1 there is a b1 satisfying p, so there are no
  // unsatisfaction tuples over {a1} and the only valid reduction is TRUE.
  Schema s = Abc();
  using namespace dsl;
  ExprPtr p = BindOrDie(Col("a1") == Col("b1"), s);
  auto result = Synthesize(p, s, {0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SynthesisStatus::kNone);
  EXPECT_FALSE(result->has_predicate());
}

TEST(SynthesizerTest, FiniteSpaceGivesEqualityDisjunction) {
  Schema s = Abc();
  using namespace dsl;
  ExprPtr p = BindOrDie(
      (Col("a1") >= Lit(5)) && (Col("a1") <= Lit(7)) && (Col("b1") > Lit(0)),
      s);
  auto result = Synthesize(p, s, {0});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->status, SynthesisStatus::kOptimal);
  ASSERT_TRUE(result->has_predicate());
  // Accepts exactly {5, 6, 7}.
  for (int64_t v = 0; v <= 12; ++v) {
    Tuple t({Value::Integer(v), Value::Integer(0), Value::Integer(0)});
    EXPECT_EQ(Satisfies(*result->predicate, t).value(), v >= 5 && v <= 7)
        << "v=" << v << " pred=" << result->predicate->ToString();
  }
}

TEST(SynthesizerTest, NonSeparableFallsBackToDisjunctionOrNothing) {
  // The §6.7 limitation shape: a > b && a < b + 50 && b > 0 && b < 150.
  // Over {a}: feasible a in (1, 199); FALSE samples lie on BOTH sides of
  // the TRUE samples, so a single halfplane cannot be optimal. The
  // synthesizer must still only return a VALID predicate (or none).
  Schema s;
  s.AddColumn({"t", "a", DataType::kInteger, false});
  s.AddColumn({"t", "b", DataType::kInteger, false});
  using namespace dsl;
  ExprPtr p = BindOrDie((Col("a") > Col("b")) &&
                            (Col("a") < Col("b") + Lit(50)) &&
                            (Col("b") > Lit(0)) && (Col("b") < Lit(150)),
                        s);
  auto result = Synthesize(p, s, {0});
  ASSERT_TRUE(result.ok());
  if (result->has_predicate()) {
    auto valid = VerifyImplies(p, result->predicate, s);
    ASSERT_TRUE(valid.ok());
    EXPECT_EQ(*valid, VerifyResult::kValid)
        << result->predicate->ToString();
  }
}

TEST(SynthesizerTest, StatsArePopulated) {
  Schema s = Abc();
  ExprPtr p = BindOrDie(MotivatingPredicate(), s);
  auto result = Synthesize(p, s, {0, 1});
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result->stats.solver_calls, 0u);
  EXPECT_GT(result->stats.true_samples, 0u);
  EXPECT_GT(result->stats.false_samples, 0u);
  EXPECT_GE(result->stats.generation_ms, 0.0);
}

TEST(SynthesizerTest, RejectsColumnsOutsidePredicate) {
  Schema s = Abc();
  using namespace dsl;
  ExprPtr p = BindOrDie(Col("a1") > Lit(0), s);
  auto result = Synthesize(p, s, {1});  // a2 not in p
  EXPECT_FALSE(result.ok());
}

TEST(SynthesizerTest, BaselineConfigsDiffer) {
  const SynthesisOptions v1 = SynthesisOptions::SiaV1();
  const SynthesisOptions v2 = SynthesisOptions::SiaV2();
  const SynthesisOptions sia = SynthesisOptions::Sia();
  EXPECT_EQ(v1.max_iterations, 1);
  EXPECT_EQ(v1.initial_true_samples, 110u);
  EXPECT_EQ(v2.initial_true_samples, 220u);
  EXPECT_EQ(sia.max_iterations, 41);
  EXPECT_EQ(sia.initial_true_samples, 10u);
  EXPECT_EQ(sia.samples_per_iteration, 5u);
}

}  // namespace
}  // namespace sia
