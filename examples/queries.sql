-- Example workload for sia_lint (scripts/check.sh lints this file).
-- All statements are valid in Sia's SQL dialect and must produce zero
-- diagnostics.

-- The paper's §2 motivating query.
SELECT * FROM lineitem, orders
WHERE o_orderkey = l_orderkey
  AND l_shipdate - o_orderdate < 20
  AND o_orderdate < '1993-06-01';

-- Mixed-column arithmetic only Sia can reduce onto lineitem.
SELECT * FROM lineitem, orders
WHERE o_orderkey = l_orderkey
  AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10
  AND o_orderdate >= '1994-01-01';

-- Single-table filter: the classical pushdown rule applies as-is.
SELECT * FROM lineitem
WHERE l_shipdate < '1995-06-30' AND l_quantity > 25;

-- Aggregation over a join.
SELECT * FROM lineitem, orders
WHERE o_orderkey = l_orderkey
  AND l_receiptdate - l_commitdate > 5
GROUP BY l_shipdate;
