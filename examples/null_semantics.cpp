// NULL semantics: demonstrates why Sia's Verify step uses a three-valued
// encoding (paper §5.2). A predicate implication that holds for non-NULL
// data can fail under SQL's 3VL; accepting such a predicate would change
// query results on tables with NULLs.
#include <cstdio>
#include <iostream>

#include "ir/binder.h"
#include "ir/builder.h"
#include "ir/evaluator.h"
#include "synth/verifier.h"

using namespace sia;       // NOLINT: example binary
using namespace sia::dsl;  // NOLINT

namespace {

const char* Name(VerifyResult r) {
  switch (r) {
    case VerifyResult::kValid:
      return "VALID";
    case VerifyResult::kInvalid:
      return "INVALID";
    case VerifyResult::kUnknown:
      return "UNKNOWN";
  }
  return "?";
}

void Show(const char* label, const ExprPtr& p, const ExprPtr& q,
          const Schema& s) {
  auto r = VerifyImplies(p, q, s);
  std::printf("%-55s : %s\n", label, r.ok() ? Name(*r) : "error");
}

}  // namespace

int main() {
  std::printf("Two schemas, same columns; x is NOT NULL on the left,\n"
              "nullable on the right.\n\n");

  Schema strict;
  strict.AddColumn({"t", "x", DataType::kInteger, /*nullable=*/false});
  Schema nullable;
  nullable.AddColumn({"t", "x", DataType::kInteger, /*nullable=*/true});

  // A classical boolean tautology: x > 5 OR x <= 5.
  ExprPtr taut_strict =
      Bind((Col("x") > Lit(5)) || (Col("x") <= Lit(5)), strict).value();
  ExprPtr taut_nullable =
      Bind((Col("x") > Lit(5)) || (Col("x") <= Lit(5)), nullable).value();

  std::printf("candidate predicate: x > 5 OR x <= 5\n\n");
  Show("TRUE implies candidate  (x NOT NULL)", Expr::BoolLit(true),
       taut_strict, strict);
  Show("TRUE implies candidate  (x nullable)", Expr::BoolLit(true),
       taut_nullable, nullable);

  std::printf(
      "\nWith a nullable x the implication FAILS: on the tuple x = NULL the\n"
      "candidate evaluates to UNKNOWN, so a WHERE clause would drop rows\n"
      "that TRUE keeps. Sia's Verify catches exactly this.\n\n");

  // The evaluator shows the 3VL outcome directly.
  Tuple null_row({Value::Null(DataType::kInteger)});
  auto tv = EvalPredicate(*taut_nullable, null_row);
  std::printf("candidate on (x=NULL) evaluates to: %s\n",
              tv.value() == TruthValue::kTrue    ? "TRUE"
              : tv.value() == TruthValue::kFalse ? "FALSE"
                                                 : "UNKNOWN");

  // A genuinely valid weakening stays valid under 3VL, though: if p
  // accepts a tuple (evaluates TRUE), x is necessarily non-NULL here.
  ExprPtr p = Bind(Col("x") > Lit(10), nullable).value();
  ExprPtr weaker = Bind(Col("x") > Lit(5), nullable).value();
  std::printf("\n");
  Show("x > 10 implies x > 5    (x nullable)", p, weaker, nullable);
  return 0;
}
