// Workload explorer: generates queries from the paper's §6.3 template,
// runs Sia on each, and prints what was learned — a way to eyeball the
// synthesizer's behavior on many random predicate shapes at once.
//
// Usage: workload_explorer [count] [seed]
#include <cstdio>
#include <cstdlib>
#include <iostream>

#include "catalog/catalog.h"
#include "rewrite/sia_rewriter.h"
#include "workload/querygen.h"

int main(int argc, char** argv) {
  const size_t count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  const uint64_t seed = argc > 2 ? std::strtoull(argv[2], nullptr, 10) : 2021;

  const sia::Catalog catalog = sia::Catalog::TpchCatalog();
  sia::QueryGenOptions gen_opts;
  gen_opts.seed = seed;
  auto queries = sia::GenerateWorkload(catalog, count, gen_opts);
  if (!queries.ok()) {
    std::cerr << queries.status().ToString() << "\n";
    return 1;
  }

  sia::RewriteOptions options;
  options.target_table = "lineitem";

  int rewritten = 0;
  int optimal = 0;
  for (size_t i = 0; i < queries->size(); ++i) {
    const sia::GeneratedQuery& g = (*queries)[i];
    std::printf("--- query %zu (%d terms, seed %llu) ---\n", i, g.term_count,
                static_cast<unsigned long long>(g.seed));
    std::printf("%s\n", g.sql.c_str());
    auto outcome = sia::RewriteQuery(g.query, catalog, options);
    if (!outcome.ok()) {
      std::printf("  error: %s\n\n", outcome.status().ToString().c_str());
      continue;
    }
    if (!outcome->changed()) {
      std::printf("  -> no predicate (status %s)\n\n",
                  sia::SynthesisStatusName(outcome->synthesis.status));
      continue;
    }
    ++rewritten;
    optimal += outcome->synthesis.status == sia::SynthesisStatus::kOptimal;
    std::printf("  -> learned [%s] %s\n",
                sia::SynthesisStatusName(outcome->synthesis.status),
                outcome->learned->ToString().c_str());
    std::printf("     iterations=%d true-samples=%zu false-samples=%zu\n\n",
                outcome->synthesis.stats.iterations,
                outcome->synthesis.stats.true_samples,
                outcome->synthesis.stats.false_samples);
  }
  std::printf("=== %d/%zu queries rewritten (%d proved optimal) ===\n",
              rewritten, queries->size(), optimal);
  return 0;
}
