// sia_cli — command-line driver for the full pipeline: parse a query,
// synthesize a learned predicate for a target table, optionally EXPLAIN
// both plans and execute them on generated TPC-H data.
//
//   sia_cli [--target TABLE] [--columns a,b,c] [--explain]
//           [--execute] [--sf MILLI] [--max-iterations N] [SQL]
//
// With no SQL argument the paper's §2 motivating query is used. Examples:
//
//   sia_cli
//   sia_cli --explain --execute --sf 50
//   sia_cli --target lineitem --columns l_shipdate
//       "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey
//        AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01'"
#include <cstdio>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "catalog/catalog.h"
#include "common/strings.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "parser/parser.h"
#include "rewrite/planner.h"
#include "rewrite/sia_rewriter.h"

namespace {

constexpr const char* kDefaultSql =
    "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
    "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01' "
    "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10";

int Usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--target TABLE] [--columns a,b] [--explain]\n"
               "          [--execute] [--sf MILLI] [--max-iterations N] "
               "[SQL]\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  std::string sql = kDefaultSql;
  sia::RewriteOptions options;
  options.target_table = "lineitem";
  bool explain = false;
  bool execute = false;
  int sf_milli = 100;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--target") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.target_table = v;
    } else if (arg == "--columns") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.target_columns = sia::Split(v, ',');
    } else if (arg == "--max-iterations") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      options.synthesis.max_iterations = std::atoi(v);
    } else if (arg == "--sf") {
      const char* v = next();
      if (v == nullptr) return Usage(argv[0]);
      sf_milli = std::atoi(v);
    } else if (arg == "--explain") {
      explain = true;
    } else if (arg == "--execute") {
      execute = true;
    } else if (arg == "--help" || arg == "-h") {
      Usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return Usage(argv[0]);
    } else {
      sql = arg;
    }
  }

  const sia::Catalog catalog = sia::Catalog::TpchCatalog();

  auto parsed = sia::ParseQuery(sql);
  if (!parsed.ok()) {
    std::cerr << "parse error: " << parsed.status().ToString() << "\n";
    return 1;
  }
  std::printf("-- original\n%s\n\n", parsed->ToString().c_str());

  auto outcome = sia::RewriteQuery(*parsed, catalog, options);
  if (!outcome.ok()) {
    std::cerr << "rewrite error: " << outcome.status().ToString() << "\n";
    return 1;
  }
  if (!outcome->changed()) {
    std::printf("-- no predicate synthesized (status: %s)\n",
                sia::SynthesisStatusName(outcome->synthesis.status));
  } else {
    std::printf("-- learned (%s, %d iterations, %.0f ms)\n%s\n\n",
                sia::SynthesisStatusName(outcome->synthesis.status),
                outcome->synthesis.stats.iterations,
                outcome->synthesis.stats.generation_ms +
                    outcome->synthesis.stats.learning_ms +
                    outcome->synthesis.stats.validation_ms,
                outcome->learned->ToString().c_str());
    std::printf("-- rewritten\n%s\n\n",
                outcome->rewritten.ToString().c_str());
  }

  if (explain) {
    auto p1 = sia::PlanQuery(*parsed, catalog);
    if (p1.ok()) {
      std::printf("-- plan (original)\n%s\n", (*p1)->ToString().c_str());
    }
    if (outcome->changed()) {
      auto p2 = sia::PlanQuery(outcome->rewritten, catalog);
      if (p2.ok()) {
        std::printf("-- plan (rewritten)\n%s\n", (*p2)->ToString().c_str());
      }
    }
  }

  if (execute) {
    const double sf = sf_milli / 1000.0;
    std::printf("-- executing on generated TPC-H data, SF %.3f\n", sf);
    const sia::TpchData data = sia::GenerateTpch(sf);
    sia::Executor executor;
    executor.RegisterTable("lineitem", &data.lineitem);
    executor.RegisterTable("orders", &data.orders);
    auto r1 = sia::RunQuery(*parsed, catalog, executor);
    if (!r1.ok()) {
      std::cerr << "execution error: " << r1.status().ToString() << "\n";
      return 1;
    }
    std::printf("original : %8.2f ms, %zu rows\n", r1->elapsed_ms,
                r1->row_count);
    if (outcome->changed()) {
      auto r2 = sia::RunQuery(outcome->rewritten, catalog, executor);
      if (!r2.ok()) {
        std::cerr << "execution error: " << r2.status().ToString() << "\n";
        return 1;
      }
      std::printf("rewritten: %8.2f ms, %zu rows  (results %s, %.2fx)\n",
                  r2->elapsed_ms, r2->row_count,
                  r1->content_hash == r2->content_hash ? "identical"
                                                       : "DIFFER",
                  r1->elapsed_ms / r2->elapsed_ms);
      if (r1->content_hash != r2->content_hash) return 1;
    }
  }
  return 0;
}
