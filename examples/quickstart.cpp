// Quickstart: synthesize a valid predicate over a chosen column subset
// and rewrite a SQL query with it — the 60-second tour of the public API.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "rewrite/sia_rewriter.h"

int main() {
  // 1. A catalog describing the tables (TPC-H lineitem/orders built in).
  const sia::Catalog catalog = sia::Catalog::TpchCatalog();

  // 2. A query whose WHERE clause mixes columns from both tables, so no
  //    original conjunct can be pushed below the join to lineitem.
  const std::string sql =
      "SELECT * FROM lineitem, orders "
      "WHERE o_orderkey = l_orderkey "
      "AND l_shipdate - o_orderdate < 20 "
      "AND o_orderdate < '1993-06-01'";

  // 3. Ask Sia for a predicate that only uses lineitem columns.
  sia::RewriteOptions options;
  options.target_table = "lineitem";

  auto outcome = sia::RewriteQuery(sql, catalog, options);
  if (!outcome.ok()) {
    std::cerr << "rewrite failed: " << outcome.status().ToString() << "\n";
    return 1;
  }

  std::printf("original : %s\n\n", sql.c_str());
  if (!outcome->changed()) {
    std::printf("Sia could not synthesize a useful predicate (status: %s)\n",
                sia::SynthesisStatusName(outcome->synthesis.status));
    return 0;
  }

  // 4. The learned predicate is guaranteed (by an SMT proof) to be
  //    implied by the original WHERE clause, so the rewritten query is
  //    semantically equivalent — and the optimizer can now push it below
  //    the join.
  std::printf("learned  : %s\n", outcome->learned->ToString().c_str());
  std::printf("status   : %s (%d learning iterations, %.0f ms total)\n\n",
              sia::SynthesisStatusName(outcome->synthesis.status),
              outcome->synthesis.stats.iterations,
              outcome->synthesis.stats.generation_ms +
                  outcome->synthesis.stats.learning_ms +
                  outcome->synthesis.stats.validation_ms);
  std::printf("rewritten: %s\n", outcome->rewritten.ToString().c_str());
  return 0;
}
