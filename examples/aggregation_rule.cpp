// Aggregation rule: demonstrates the second predicate-movement rule the
// paper motivates (§1): a filter above a GROUP BY may move below the
// aggregation when it only references GROUP BY columns [Levy et al.,
// VLDB'94] — and how a Sia-learned predicate enables it where the
// original predicate could not move.
#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "engine/executor.h"
#include "engine/tpch_gen.h"
#include "ir/binder.h"
#include "ir/builder.h"
#include "rewrite/plan.h"
#include "rewrite/rules.h"
#include "synth/synthesizer.h"

using namespace sia;       // NOLINT: example binary
using namespace sia::dsl;  // NOLINT

int main() {
  const Catalog catalog = Catalog::TpchCatalog();
  const Schema lineitem = catalog.GetTable("lineitem").value();

  // Plan: Aggregate(group by l_shipdate) over lineitem, then a filter on
  // the group key above it.
  const size_t ship = *lineitem.FindColumn("l_shipdate");
  PlanPtr scan = PlanNode::Scan("lineitem", lineitem);
  PlanPtr agg = PlanNode::Aggregate({ship}, scan);

  // The aggregate output schema is [l_shipdate, count]; a predicate on
  // l_shipdate (output column 0) can move below, one on count cannot.
  ExprPtr on_key =
      Bind(Col("l_shipdate") < Expr::DateLit(8552), agg->output_schema())
          .value();
  ExprPtr on_count = Bind(Col("count") > Lit(3), agg->output_schema()).value();
  PlanPtr filtered = PlanNode::Filter(
      Expr::Logic(LogicOp::kAnd, on_key, on_count), agg);

  std::printf("before movement:\n%s\n", filtered->ToString().c_str());
  PlanPtr moved = ApplyPredicateMovement(filtered);
  std::printf("after movement:\n%s\n", moved->ToString().c_str());

  // Execute both to show equal results with less aggregation work.
  const TpchData data = GenerateTpch(0.01);
  Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);

  auto before = executor.Execute(filtered);
  auto after = executor.Execute(moved);
  if (!before.ok() || !after.ok()) {
    std::cerr << "execution failed\n";
    return 1;
  }
  std::printf("rows: before=%zu after=%zu  hash equal: %s\n",
              before->row_count, after->row_count,
              before->content_hash == after->content_hash ? "yes" : "NO");
  std::printf("elapsed: before=%.2fms after=%.2fms\n", before->elapsed_ms,
              after->elapsed_ms);

  // And the Sia connection: if the filter had been
  //   l_shipdate - l_commitdate > -29   (not a group-by-only predicate
  // when grouping by l_shipdate alone), the rule cannot fire — but a
  // Sia-learned reduction onto {l_shipdate} can take its place below the
  // aggregation, exactly like the join case.
  const Schema& joint = lineitem;
  ExprPtr cross = Bind((Col("l_commitdate") - Col("l_shipdate") < Lit(29)) &&
                           (Col("l_commitdate") >= Expr::DateLit(8552)),
                       joint)
                      .value();
  auto synth = Synthesize(cross, joint, {ship});
  if (synth.ok() && synth->has_predicate()) {
    std::printf("\nlearned group-key-only reduction of the cross-column "
                "filter:\n  %s  [%s]\n",
                synth->predicate->ToString().c_str(),
                SynthesisStatusName(synth->status));
  }
  return 0;
}
