// Pushdown tour: shows WHY learned predicates speed queries up, by
// printing the logical plans and engine execution statistics before and
// after the rewrite — the Fig. 1 story of the paper, end to end on real
// (generated) data.
#include <cstdio>
#include <iostream>

#include "catalog/catalog.h"
#include "engine/executor.h"
#include "engine/runner.h"
#include "engine/tpch_gen.h"
#include "parser/parser.h"
#include "rewrite/planner.h"
#include "rewrite/sia_rewriter.h"

int main() {
  const sia::Catalog catalog = sia::Catalog::TpchCatalog();

  const std::string sql =
      "SELECT * FROM lineitem, orders WHERE o_orderkey = l_orderkey "
      "AND l_shipdate - o_orderdate < 20 AND o_orderdate < '1993-06-01' "
      "AND l_commitdate - l_shipdate < l_shipdate - o_orderdate + 10";

  auto query = sia::ParseQuery(sql);
  if (!query.ok()) {
    std::cerr << query.status().ToString() << "\n";
    return 1;
  }

  // --- Plan P1: the original query. The only pushable conjunct touches
  // orders; lineitem is scanned in full.
  auto p1 = sia::PlanQuery(*query, catalog);
  std::printf("P1 (original):\n%s\n", (*p1)->ToString().c_str());

  // --- Rewrite with Sia, then re-plan.
  sia::RewriteOptions options;
  options.target_table = "lineitem";
  auto outcome = sia::RewriteQuery(*query, catalog, options);
  if (!outcome.ok() || !outcome->changed()) {
    std::cerr << "rewrite produced nothing\n";
    return 1;
  }
  std::printf("learned predicate: %s\n\n",
              outcome->learned->ToString().c_str());
  auto p2 = sia::PlanQuery(outcome->rewritten, catalog);
  std::printf("P2 (rewritten):\n%s\n", (*p2)->ToString().c_str());

  // --- Execute both on generated TPC-H data and compare operator stats.
  const sia::TpchData data = sia::GenerateTpch(0.05);
  sia::Executor executor;
  executor.RegisterTable("lineitem", &data.lineitem);
  executor.RegisterTable("orders", &data.orders);

  auto r1 = executor.Execute(*p1);
  auto r2 = executor.Execute(*p2);
  if (!r1.ok() || !r2.ok()) {
    std::cerr << "execution failed\n";
    return 1;
  }
  std::printf("                      %12s %12s\n", "P1", "P2");
  std::printf("rows scanned        : %12zu %12zu\n", r1->stats.rows_scanned,
              r2->stats.rows_scanned);
  std::printf("rows into join probe: %12zu %12zu   <-- the payoff\n",
              r1->stats.join_probe_rows, r2->stats.join_probe_rows);
  std::printf("join output rows    : %12zu %12zu\n",
              r1->stats.join_output_rows, r2->stats.join_output_rows);
  std::printf("final output rows   : %12zu %12zu\n", r1->row_count,
              r2->row_count);
  std::printf("elapsed ms          : %12.2f %12.2f\n", r1->elapsed_ms,
              r2->elapsed_ms);
  std::printf("results identical   : %s\n",
              r1->content_hash == r2->content_hash ? "yes" : "NO (bug!)");
  return 0;
}
