#!/usr/bin/env bash
# Static-analysis and sanitizer gate for the Sia tree.
#
# Builds everything in a dedicated build dir with ASan+UBSan and
# -Werror, runs the full test suite under the sanitizers, verifies the
# SIA_ASSIGN_OR_RETURN misuse guard (un-braced `if` body must fail to
# compile), then runs sia_lint over the example SQL workload and a
# seeded generated workload (with the full Sia rewrite enabled) and
# requires zero diagnostics.
#
# `check.sh --fault-sweep` additionally runs the robustness fault sweep:
# for every fault point the pipeline declares, the fault_sweep_test
# binary is re-run (still under the sanitizers) with SIA_FAULTS forcing
# that point to fail, asserting no crash, graceful degradation, and
# results identical to the fault-free baseline.
#
# Environment overrides:
#   BUILD_DIR        build directory (default build-check)
#   SANITIZE         SIA_SANITIZE value (default address,undefined)
#   LINT_WORKLOAD    number of generated queries to lint (default 1000)
#   LINT_ITERATIONS  synthesis iteration budget for the rewrite pass
#                    (default 3; the paper's default of 41 is much
#                    slower and adds no validation coverage)
#   SWEEP_QUERIES    queries per fault-sweep pass (default 8)
#   JOBS             parallel build/test jobs (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-check}
SANITIZE=${SANITIZE:-address,undefined}
LINT_WORKLOAD=${LINT_WORKLOAD:-1000}
LINT_ITERATIONS=${LINT_ITERATIONS:-3}
SWEEP_QUERIES=${SWEEP_QUERIES:-8}
JOBS=${JOBS:-$(nproc)}

FAULT_SWEEP=0
for arg in "$@"; do
  case "$arg" in
    --fault-sweep) FAULT_SWEEP=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== configure (${BUILD_DIR}: SIA_SANITIZE=${SANITIZE}, SIA_WERROR=ON)"
cmake -B "${BUILD_DIR}" -S . \
  -DSIA_SANITIZE="${SANITIZE}" -DSIA_WERROR=ON >/dev/null

echo "== build"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== ctest (under ${SANITIZE})"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== SIA_ASSIGN_OR_RETURN misuse must fail to compile"
# The macro expands to several statements; as the un-braced body of an
# `if` it must be a compile error (see src/common/status.h), or a
# conditional assignment would silently become unconditional.
COMPILE_OK_SRC=$(mktemp --suffix=.cc)
COMPILE_FAIL_SRC=$(mktemp --suffix=.cc)
trap 'rm -f "${COMPILE_OK_SRC}" "${COMPILE_FAIL_SRC}"' EXIT
# Positive control first: the same macro in a braced body must compile,
# so a rejection below means the guard fired, not a broken include path.
cat > "${COMPILE_OK_SRC}" <<'EOF'
#include "common/status.h"
sia::Result<int> Source() { return 1; }
sia::Result<int> Ok(bool flag) {
  if (flag) {
    SIA_ASSIGN_OR_RETURN(int v, Source());
    return v;
  }
  return 0;
}
EOF
c++ -std=c++20 -Isrc -fsyntax-only "${COMPILE_OK_SRC}"
cat > "${COMPILE_FAIL_SRC}" <<'EOF'
#include "common/status.h"
sia::Result<int> Source() { return 1; }
sia::Result<int> Misuse(bool flag) {
  if (flag)
    SIA_ASSIGN_OR_RETURN(int v, Source());  // un-braced if body: must not compile
  return 0;
}
EOF
if c++ -std=c++20 -Isrc -fsyntax-only "${COMPILE_FAIL_SRC}" 2>/dev/null; then
  echo "ERROR: un-braced SIA_ASSIGN_OR_RETURN misuse compiled" >&2
  exit 1
fi
echo "   (rejected, as required)"

LINT="${BUILD_DIR}/tools/sia_lint"

echo "== sia_lint examples/*.sql"
"${LINT}" --werror examples/*.sql

echo "== sia_lint --workload ${LINT_WORKLOAD} (bind/plan/movement)"
"${LINT}" --werror -q --workload "${LINT_WORKLOAD}"

echo "== sia_lint --workload ${LINT_WORKLOAD} --rewrite" \
     "(learned-predicate + rewritten-plan validation)"
"${LINT}" --werror -q --workload "${LINT_WORKLOAD}" --rewrite \
  --max-iterations "${LINT_ITERATIONS}"

if [[ "${FAULT_SWEEP}" -eq 1 ]]; then
  SWEEP_BIN="${BUILD_DIR}/tests/fault_sweep_test"
  echo "== fault sweep (${SWEEP_QUERIES} queries per point, under ${SANITIZE})"
  # Only fault_sweep_test runs with SIA_FAULTS set: it is the one suite
  # written to expect injected failures (the rest of the tests assert
  # fault-free behavior and already ran above).
  while read -r point; do
    for mode in once always; do
      echo "   -- SIA_FAULTS=${point}=${mode}"
      SIA_FAULTS="${point}=${mode}" SIA_SWEEP_QUERIES="${SWEEP_QUERIES}" \
        "${SWEEP_BIN}" --gtest_filter='FaultSweepTest.EnvArmedSweep' \
        --gtest_brief=1
    done
  done < <("${LINT}" --list-fault-points)
  echo "   -- SIA_FAULTS=smt.check=prob:0.3,engine.scan=latency:5"
  SIA_FAULTS="smt.check=prob:0.3,engine.scan=latency:5" \
    SIA_SWEEP_QUERIES="${SWEEP_QUERIES}" \
    "${SWEEP_BIN}" --gtest_filter='FaultSweepTest.EnvArmedSweep' \
    --gtest_brief=1
fi

echo "== check.sh: all gates passed"
