#!/usr/bin/env bash
# Static-analysis and sanitizer gate for the Sia tree.
#
# Builds everything in a dedicated build dir with ASan+UBSan and
# -Werror, runs the full test suite under the sanitizers, then runs
# sia_lint over the example SQL workload and a seeded generated
# workload (with the full Sia rewrite enabled) and requires zero
# diagnostics.
#
# Environment overrides:
#   BUILD_DIR        build directory (default build-check)
#   SANITIZE         SIA_SANITIZE value (default address,undefined)
#   LINT_WORKLOAD    number of generated queries to lint (default 1000)
#   LINT_ITERATIONS  synthesis iteration budget for the rewrite pass
#                    (default 3; the paper's default of 41 is much
#                    slower and adds no validation coverage)
#   JOBS             parallel build/test jobs (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-check}
SANITIZE=${SANITIZE:-address,undefined}
LINT_WORKLOAD=${LINT_WORKLOAD:-1000}
LINT_ITERATIONS=${LINT_ITERATIONS:-3}
JOBS=${JOBS:-$(nproc)}

echo "== configure (${BUILD_DIR}: SIA_SANITIZE=${SANITIZE}, SIA_WERROR=ON)"
cmake -B "${BUILD_DIR}" -S . \
  -DSIA_SANITIZE="${SANITIZE}" -DSIA_WERROR=ON >/dev/null

echo "== build"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== ctest (under ${SANITIZE})"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

LINT="${BUILD_DIR}/tools/sia_lint"

echo "== sia_lint examples/*.sql"
"${LINT}" --werror examples/*.sql

echo "== sia_lint --workload ${LINT_WORKLOAD} (bind/plan/movement)"
"${LINT}" --werror -q --workload "${LINT_WORKLOAD}"

echo "== sia_lint --workload ${LINT_WORKLOAD} --rewrite" \
     "(learned-predicate + rewritten-plan validation)"
"${LINT}" --werror -q --workload "${LINT_WORKLOAD}" --rewrite \
  --max-iterations "${LINT_ITERATIONS}"

echo "== check.sh: all gates passed"
