#!/usr/bin/env bash
# Static-analysis and sanitizer gate for the Sia tree.
#
# Builds everything in a dedicated build dir with ASan+UBSan and
# -Werror, runs the full test suite under the sanitizers, verifies the
# SIA_ASSIGN_OR_RETURN misuse guard (un-braced `if` body must fail to
# compile), then runs sia_lint over the example SQL workload and a
# seeded generated workload (with the full Sia rewrite enabled) and
# requires zero diagnostics.
#
# Concurrency gates run as part of the standard pass:
#   - the src/obs concurrency tests, the threading-substrate tests
#     (tests/parallel_test.cc: ParallelFor, morsel-parallel execution,
#     the single-flight rewrite cache, the batch rewriter) AND the
#     serving-subsystem tests (tests/server_test.cc: protocol abuse,
#     load shedding, graceful drain) are rebuilt and re-run under
#     ThreadSanitizer in a dedicated build dir;
#   - an overhead guard builds bench_micro twice — observability
#     compiled in but disabled (the shipping configuration) vs compiled
#     out via -DSIA_DISABLE_OBS=ON — and asserts the instrumented hot
#     paths stay within OBS_OVERHEAD_PCT of the obs-free baseline
#     (pinned to SIA_THREADS=1 so pool scheduling noise stays out of
#     the nanosecond-scale comparison);
#   - a threads sweep runs bench_fig9_runtime at SIA_THREADS=1 and 4
#     and asserts the per-scale result_hash (an order-sensitive digest
#     of every original query's output) is identical — the engine's
#     byte-identical-output-at-any-thread-count contract, end to end.
#
# `check.sh --fault-sweep` additionally runs the robustness fault sweep:
# for every fault point the pipeline declares, the fault_sweep_test
# binary is re-run (still under the sanitizers) with SIA_FAULTS forcing
# that point to fail, asserting no crash, graceful degradation, and
# results identical to the fault-free baseline.
#
# `check.sh --serve-smoke` additionally runs the serving end-to-end
# gates:
#   - sync mode: start sia_serve --sync-rewrite (executing queries
#     against generated TPC-H data), drive SMOKE_QUERIES seeded workload
#     queries through it with sia_client, and require the client's
#     digest lines to be byte-identical to sia_lint --digests-out batch
#     runs at --threads 1 AND 4; then SIGTERM the daemon and require a
#     clean drain (exit 0, DRAINED line);
#   - promotion lifecycle: start sia_serve in its default background-
#     learning mode with --promote-after 3 --shadow-sample-rate 1,
#     repeat the same PROMO_QUERIES-query template workload until STATS
#     reports rewrite.promote.promoted >= 1, and require every pass's
#     rows/content_hash to equal the batch sia_lint reference — the
#     learning loop may never change an answer. A 10 Hz sia_top poller
#     runs throughout, the OBSERVE verb is fetched raw mid-burst and
#     must parse as the documented JSON schema, and the SIA_TRACE
#     Chrome export written at drain must contain at least one trace ID
#     whose spans link admission -> background synthesis -> promotion
#     decision;
#   - OBSERVE overhead: a fresh server with a deterministic injected
#     per-scan latency floor serves the same warm workload in two quiet
#     and two 10 Hz sia_top-polled passes (interleaved); every pass's
#     digests must be byte-identical while the best-of-two polled p99
#     request latency (lifetime-histogram bucket deltas between STATS
#     snapshots) stays within OBSERVE_OVERHEAD_PCT of the best-of-two
#     quiet p99.
#
# `check.sh --static` additionally runs the compile-time concurrency and
# conventions gates:
#   - sia_conventions (tools/conventions_lib.cc) must report zero
#     findings across src/ tools/ tests/ bench/ — the lock-annotation,
#     raw-primitive, [[nodiscard]], obs-catalog, span-scope, and
#     SIA_NO_THREAD_SAFETY_ANALYSIS invariants;
#   - when clang++ >= ${CLANG_MIN_MAJOR} is installed, the whole tree is
#     rebuilt with clang in ${BUILD_DIR}-static so -Wthread-safety (see
#     CMakeLists.txt) verifies every SIA_GUARDED_BY / SIA_REQUIRES /
#     SIA_EXCLUDES annotation under -Werror, and clang-tidy (the
#     repo-root .clang-tidy profile, WarningsAsErrors on the bugprone
#     and performance families — a gate here, not just an editor
#     profile) runs over the tree's compile_commands.json. Without
#     clang the stage degrades to sia_conventions alone, with a loud
#     warning: the annotations still compile (they expand to nothing
#     under GCC) but are unverified.
#
# Environment overrides:
#   BUILD_DIR        build directory (default build-check)
#   SANITIZE         SIA_SANITIZE value (default address,undefined)
#   LINT_WORKLOAD    number of generated queries to lint (default 1000)
#   LINT_ITERATIONS  synthesis iteration budget for the rewrite pass
#                    (default 3; the paper's default of 41 is much
#                    slower and adds no validation coverage)
#   SWEEP_QUERIES    queries per fault-sweep pass (default 8)
#   SMOKE_QUERIES    queries for the --serve-smoke gate (default 200)
#   SMOKE_SCALE      TPC-H scale factor for --serve-smoke (default 0.01)
#   PROMO_QUERIES    template-workload size for the promotion-lifecycle
#                    smoke (default 12)
#   PROMO_PASSES     max repeats of the template workload while waiting
#                    for a promotion (default 12)
#   OBS_OVERHEAD_PCT max tolerated bench_micro slowdown, percent, of the
#                    obs-disabled build over the obs-free build
#                    (default 10 — the gate is one relaxed atomic load
#                    per site, so real regressions blow well past this)
#   OBSERVE_OVERHEAD_PCT max tolerated p99 latency delta, percent, of a
#                    10 Hz OBSERVE-polled serving pass over a quiet one
#                    (default 5; the injected latency floor makes the
#                    comparison deterministic enough for that bound)
#   OBS_GUARD_QUERIES workload size per OBSERVE-overhead pass
#                    (default 96)
#   JOBS             parallel build/test jobs (default nproc)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build-check}
SANITIZE=${SANITIZE:-address,undefined}
LINT_WORKLOAD=${LINT_WORKLOAD:-1000}
LINT_ITERATIONS=${LINT_ITERATIONS:-3}
SWEEP_QUERIES=${SWEEP_QUERIES:-8}
SMOKE_QUERIES=${SMOKE_QUERIES:-200}
SMOKE_SCALE=${SMOKE_SCALE:-0.01}
PROMO_QUERIES=${PROMO_QUERIES:-12}
PROMO_PASSES=${PROMO_PASSES:-12}
OBS_OVERHEAD_PCT=${OBS_OVERHEAD_PCT:-10}
OBSERVE_OVERHEAD_PCT=${OBSERVE_OVERHEAD_PCT:-5}
OBS_GUARD_QUERIES=${OBS_GUARD_QUERIES:-96}
JOBS=${JOBS:-$(nproc)}

FAULT_SWEEP=0
SERVE_SMOKE=0
STATIC=0
for arg in "$@"; do
  case "$arg" in
    --fault-sweep) FAULT_SWEEP=1 ;;
    --serve-smoke) SERVE_SMOKE=1 ;;
    --static) STATIC=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

# Oldest clang whose thread-safety analysis understands every annotation
# sync.h emits (scoped_lockable with split Unlock/Lock re-acquire).
CLANG_MIN_MAJOR=14

# A build dir configured with one compiler silently keeps it forever:
# `cmake -B dir` on an existing cache ignores a changed CC/CXX, so a
# stale dir would make the clang stages below "pass" under GCC (where
# every thread-safety annotation expands to nothing). Refuse to reuse a
# cache whose compiler differs from the one this run needs.
require_compiler() { # <build-dir> <compiler>
  local cache="$1/CMakeCache.txt" cached want
  [[ -f "${cache}" ]] || return 0
  cached=$(sed -n 's/^CMAKE_CXX_COMPILER:[^=]*=//p' "${cache}" | head -n1)
  want=$(command -v "$2" || true)
  [[ -n "${cached}" && -n "${want}" ]] || return 0
  if [[ "$(readlink -f "${cached}")" != "$(readlink -f "${want}")" ]]; then
    echo "ERROR: $1 was configured with ${cached}, but this run needs $2;" \
         "remove it (rm -rf $1) and re-run" >&2
    exit 1
  fi
}

echo "== configure (${BUILD_DIR}: SIA_SANITIZE=${SANITIZE}, SIA_WERROR=ON)"
require_compiler "${BUILD_DIR}" "${CXX:-c++}"
cmake -B "${BUILD_DIR}" -S . \
  -DSIA_SANITIZE="${SANITIZE}" -DSIA_WERROR=ON >/dev/null

echo "== build"
cmake --build "${BUILD_DIR}" -j "${JOBS}"

echo "== ctest (under ${SANITIZE})"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "== SIA_ASSIGN_OR_RETURN misuse must fail to compile"
# The macro expands to several statements; as the un-braced body of an
# `if` it must be a compile error (see src/common/status.h), or a
# conditional assignment would silently become unconditional.
COMPILE_OK_SRC=$(mktemp --suffix=.cc)
COMPILE_FAIL_SRC=$(mktemp --suffix=.cc)
trap 'rm -f "${COMPILE_OK_SRC}" "${COMPILE_FAIL_SRC}"' EXIT
# Positive control first: the same macro in a braced body must compile,
# so a rejection below means the guard fired, not a broken include path.
cat > "${COMPILE_OK_SRC}" <<'EOF'
#include "common/status.h"
sia::Result<int> Source() { return 1; }
sia::Result<int> Ok(bool flag) {
  if (flag) {
    SIA_ASSIGN_OR_RETURN(int v, Source());
    return v;
  }
  return 0;
}
EOF
c++ -std=c++20 -Isrc -fsyntax-only "${COMPILE_OK_SRC}"
cat > "${COMPILE_FAIL_SRC}" <<'EOF'
#include "common/status.h"
sia::Result<int> Source() { return 1; }
sia::Result<int> Misuse(bool flag) {
  if (flag)
    SIA_ASSIGN_OR_RETURN(int v, Source());  // un-braced if body: must not compile
  return 0;
}
EOF
if c++ -std=c++20 -Isrc -fsyntax-only "${COMPILE_FAIL_SRC}" 2>/dev/null; then
  echo "ERROR: un-braced SIA_ASSIGN_OR_RETURN misuse compiled" >&2
  exit 1
fi
echo "   (rejected, as required)"

# --- Static concurrency/conventions gates (--static) ---------------------
if [[ "${STATIC}" -eq 1 ]]; then
  echo "== sia_conventions (repo-invariant linter, zero findings required)"
  "${BUILD_DIR}/tools/sia_conventions" --root=.

  CLANG_BIN=$(command -v clang++ || true)
  CLANG_MAJOR=0
  if [[ -n "${CLANG_BIN}" ]]; then
    CLANG_MAJOR=$("${CLANG_BIN}" -dumpversion 2>/dev/null | cut -d. -f1)
    CLANG_MAJOR=${CLANG_MAJOR:-0}
  fi
  if [[ -z "${CLANG_BIN}" || "${CLANG_MAJOR}" -lt "${CLANG_MIN_MAJOR}" ]]; then
    echo "!!" >&2
    echo "!! WARNING: clang++ >= ${CLANG_MIN_MAJOR} not found" \
         "(found: ${CLANG_BIN:-none}, major ${CLANG_MAJOR})." >&2
    echo "!! The -Wthread-safety and clang-tidy gates were SKIPPED: the" >&2
    echo "!! sync.h lock annotations compile (they are no-ops under GCC)" >&2
    echo "!! but are UNVERIFIED on this machine. Install clang to run" >&2
    echo "!! the full static gate." >&2
    echo "!!" >&2
  else
    STATIC_DIR="${BUILD_DIR}-static"
    echo "== clang -Wthread-safety -Werror (${STATIC_DIR}," \
         "clang ${CLANG_MAJOR})"
    require_compiler "${STATIC_DIR}" clang++
    cmake -B "${STATIC_DIR}" -S . -DCMAKE_CXX_COMPILER="${CLANG_BIN}" \
      -DSIA_WERROR=ON >/dev/null
    cmake --build "${STATIC_DIR}" -j "${JOBS}"

    TIDY_BIN=$(command -v clang-tidy || true)
    if [[ -z "${TIDY_BIN}" ]]; then
      echo "!! WARNING: clang-tidy not found; the .clang-tidy gate was" \
           "SKIPPED." >&2
    else
      echo "== clang-tidy (WarningsAsErrors: bugprone-*, performance-*)"
      # Sources only: headers are pulled in through HeaderFilterRegex.
      find src tools bench -name '*.cc' -print0 |
        xargs -0 -P "${JOBS}" -n 8 "${TIDY_BIN}" -p "${STATIC_DIR}" --quiet
    fi
  fi
fi

LINT="${BUILD_DIR}/tools/sia_lint"

echo "== sia_lint examples/*.sql"
"${LINT}" --werror examples/*.sql

echo "== sia_lint --workload ${LINT_WORKLOAD} (bind/plan/movement)"
"${LINT}" --werror -q --workload "${LINT_WORKLOAD}"

echo "== sia_lint --workload ${LINT_WORKLOAD} --rewrite" \
     "(learned-predicate + rewritten-plan validation)"
"${LINT}" --werror -q --workload "${LINT_WORKLOAD}" --rewrite \
  --max-iterations "${LINT_ITERATIONS}"

# --- Serve smoke: served digests == batch-lint digests, clean drain ------
if [[ "${SERVE_SMOKE}" -eq 1 ]]; then
  SERVE="${BUILD_DIR}/tools/sia_serve"
  CLIENT="${BUILD_DIR}/tools/sia_client"
  SMOKE_DIR=$(mktemp -d)
  SERVE_PID=""
  TOP_PID=""
  trap 'rm -f "${COMPILE_OK_SRC}" "${COMPILE_FAIL_SRC}";
        [[ -n "${TOP_PID}" ]] && kill "${TOP_PID}" 2>/dev/null;
        [[ -n "${SERVE_PID}" ]] && kill "${SERVE_PID}" 2>/dev/null;
        rm -rf "${SMOKE_DIR}"' EXIT

  echo "== serve smoke (${SMOKE_QUERIES} queries, sf=${SMOKE_SCALE}," \
       "served vs batch-lint digests, graceful drain)"
  # --sync-rewrite: the byte-identical digest diff below needs the
  # synchronous ladder on the serving path (background learning answers
  # misses with the original, so rung/sql_hash lines would differ).
  "${SERVE}" --port-file "${SMOKE_DIR}/port" --workers 4 \
    --scale "${SMOKE_SCALE}" --max-iterations "${LINT_ITERATIONS}" \
    --sync-rewrite \
    > "${SMOKE_DIR}/serve.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 300); do
    [[ -s "${SMOKE_DIR}/port" ]] && break
    if ! kill -0 "${SERVE_PID}" 2>/dev/null; then break; fi
    sleep 0.1
  done
  if [[ ! -s "${SMOKE_DIR}/port" ]]; then
    echo "ERROR: sia_serve did not come up" >&2
    cat "${SMOKE_DIR}/serve.log" >&2
    exit 1
  fi
  SMOKE_PORT=$(cat "${SMOKE_DIR}/port")

  "${CLIENT}" --port "${SMOKE_PORT}" --workload "${SMOKE_QUERIES}" \
    --concurrency 8 --digests-out "${SMOKE_DIR}/client.dig"
  if [[ "$(wc -l < "${SMOKE_DIR}/client.dig")" -ne "${SMOKE_QUERIES}" ]]; then
    echo "ERROR: expected ${SMOKE_QUERIES} digest lines from sia_client" >&2
    exit 1
  fi

  # The client's served digests must be byte-identical to batch sia_lint
  # digests — serially and through the 4-thread batch rewriter.
  for t in 1 4; do
    "${LINT}" -q --rewrite --workload "${SMOKE_QUERIES}" --threads "${t}" \
      --max-iterations "${LINT_ITERATIONS}" --execute-sf "${SMOKE_SCALE}" \
      --digests-out "${SMOKE_DIR}/lint_t${t}.dig" > /dev/null
    if ! diff -u "${SMOKE_DIR}/client.dig" "${SMOKE_DIR}/lint_t${t}.dig"; then
      echo "ERROR: served digests != sia_lint --threads ${t} digests" >&2
      exit 1
    fi
    echo "   digests: served == sia_lint --threads ${t}" \
         "(${SMOKE_QUERIES} lines)"
  done

  # Graceful drain: SIGTERM must finish in-flight work and exit 0.
  kill -TERM "${SERVE_PID}"
  if ! wait "${SERVE_PID}"; then
    echo "ERROR: sia_serve did not drain cleanly" >&2
    cat "${SMOKE_DIR}/serve.log" >&2
    exit 1
  fi
  SERVE_PID=""
  if ! grep -q '^DRAINED ' "${SMOKE_DIR}/serve.log"; then
    echo "ERROR: sia_serve exited without a DRAINED line" >&2
    cat "${SMOKE_DIR}/serve.log" >&2
    exit 1
  fi
  sed -n 's/^/   /p' "${SMOKE_DIR}/serve.log"

  # --- Promotion lifecycle: background learning end to end --------------
  # Default-mode sia_serve (never synthesize on the serving path), every
  # eligible serve shadow-checked, repeated passes of the same template
  # workload. Required: at least one entry earns kPromoted on measured
  # evidence, and every pass's rows/content_hash match the batch lint
  # reference throughout — the learning loop may change rung/sql_hash
  # lines, never an answer.
  echo "== promotion lifecycle smoke (${PROMO_QUERIES} queries x up to" \
       "${PROMO_PASSES} passes, --promote-after 3, shadow rate 1," \
       "10 Hz sia_top poller throughout)"
  # SIA_TRACE: the drain flushes a Chrome trace export; the chain check
  # below requires one trace ID to link admission -> synthesis ->
  # promotion decision across it.
  SIA_METRICS=stderr SIA_TRACE="${SMOKE_DIR}/promo_trace.json" \
    "${SERVE}" --port-file "${SMOKE_DIR}/promo_port" \
    --workers 4 --scale "${SMOKE_SCALE}" \
    --max-iterations "${LINT_ITERATIONS}" \
    --promote-after 3 --shadow-sample-rate 1 \
    > "${SMOKE_DIR}/promo.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 300); do
    [[ -s "${SMOKE_DIR}/promo_port" ]] && break
    if ! kill -0 "${SERVE_PID}" 2>/dev/null; then break; fi
    sleep 0.1
  done
  if [[ ! -s "${SMOKE_DIR}/promo_port" ]]; then
    echo "ERROR: sia_serve (promotion smoke) did not come up" >&2
    cat "${SMOKE_DIR}/promo.log" >&2
    exit 1
  fi
  PROMO_PORT=$(cat "${SMOKE_DIR}/promo_port")

  # The live console view polls OBSERVE at 10 Hz for the whole smoke:
  # every reply must render (sia_top exits 1 on any malformed frame).
  TOP="${BUILD_DIR}/tools/sia_top"
  "${TOP}" --port "${PROMO_PORT}" --interval-ms 100 \
    > "${SMOKE_DIR}/promo_top.out" 2>&1 &
  TOP_PID=$!

  "${LINT}" -q --rewrite --workload "${PROMO_QUERIES}" --threads 1 \
    --max-iterations "${LINT_ITERATIONS}" --execute-sf "${SMOKE_SCALE}" \
    --digests-out "${SMOKE_DIR}/promo_lint.dig" > /dev/null

  PROMOTED=0
  PASSES_RUN=0
  for pass in $(seq 1 "${PROMO_PASSES}"); do
    "${CLIENT}" --port "${PROMO_PORT}" --workload "${PROMO_QUERIES}" -q \
      --digests-out "${SMOKE_DIR}/promo_pass${pass}.dig" > /dev/null
    PASSES_RUN="${pass}"
    if [[ "${pass}" -eq 1 ]]; then
      # Raw OBSERVE mid-burst: one frame over the wire, parsed against
      # the documented schema (DESIGN.md "Live telemetry") — the tool
      # above exercises the rendering; this asserts the contract.
      python3 - "${PROMO_PORT}" <<'EOF'
import json, socket, struct, sys

with socket.create_connection(("127.0.0.1", int(sys.argv[1])), 10) as s:
    s.settimeout(10)
    s.sendall(struct.pack(">I", len(b"OBSERVE")) + b"OBSERVE")
    raw = b""
    while len(raw) < 4:
        raw += s.recv(4 - len(raw))
    (n,) = struct.unpack(">I", raw)
    body = b""
    while len(body) < n:
        chunk = s.recv(n - len(body))
        if not chunk:
            sys.exit("ERROR: OBSERVE reply truncated")
        body += chunk
text = body.decode()
status, _, payload = text.partition("\n")
if status.split()[0] != "OK":
    sys.exit(f"ERROR: OBSERVE replied {status!r}, want OK")
snap = json.loads(payload)
missing = [k for k in ("now_us", "windows", "events", "cache")
           if k not in snap]
if missing:
    sys.exit(f"ERROR: OBSERVE snapshot missing keys {missing}")
for win in ("1s", "10s", "60s"):
    if win not in snap["windows"]:
        sys.exit(f"ERROR: OBSERVE windows missing {win!r}")
print(f"   OBSERVE mid-burst: OK, schema valid "
      f"({len(snap['events'])} events, {len(snap['cache'])} cache entries)")
EOF
    fi
    "${CLIENT}" --port "${PROMO_PORT}" --stats -q \
      > "${SMOKE_DIR}/promo_stats.out"
    PROMOTED=$(python3 - "${SMOKE_DIR}/promo_stats.out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if line.startswith("{"):
            print(int(json.loads(line).get("counters", {})
                      .get("rewrite.promote.promoted", 0)))
            break
    else:
        print(0)
EOF
)
    # Keep serving a few passes after the first promotion so promoted
    # entries are exercised (and digest-checked) on the serving path.
    if [[ "${PROMOTED}" -ge 1 && "${pass}" -ge 4 ]]; then break; fi
    sleep 2  # let queued background jobs land between template repeats
  done
  if [[ "${PROMOTED}" -lt 1 ]]; then
    echo "ERROR: no cache entry reached kPromoted after" \
         "${PASSES_RUN} passes" >&2
    cat "${SMOKE_DIR}/promo_stats.out" >&2
    cat "${SMOKE_DIR}/promo.log" >&2
    exit 1
  fi
  echo "   promoted entries (counter rewrite.promote.promoted):" \
       "${PROMOTED} after ${PASSES_RUN} passes"
  python3 - "${PROMO_QUERIES}" "${SMOKE_DIR}/promo_lint.dig" \
      "${SMOKE_DIR}"/promo_pass*.dig <<'EOF'
import re, sys

want = int(sys.argv[1])

def digests(path):
    """seed -> (rows, content_hash); only executed lines carry digests."""
    out = {}
    with open(path) as f:
        for line in f:
            m = re.search(r"^workload:seed(\d+).* rows=(\d+) "
                          r"content_hash=([0-9a-f]+)", line)
            if m:
                out[int(m.group(1))] = (m.group(2), m.group(3))
    return out

ref = digests(sys.argv[2])
if len(ref) != want:
    print(f"ERROR: lint reference has {len(ref)} digest lines, want {want}",
          file=sys.stderr)
    sys.exit(1)
failed = False
for path in sys.argv[3:]:
    got = digests(path)
    if len(got) != want:
        print(f"ERROR: {path}: {len(got)} digest lines, want {want}",
              file=sys.stderr)
        failed = True
        continue
    for seed, digest in got.items():
        if ref.get(seed) != digest:
            print(f"ERROR: {path}: seed {seed} served {digest}, batch lint "
                  f"says {ref.get(seed)}", file=sys.stderr)
            failed = True
if failed:
    print("ERROR: served digests diverged from the batch reference",
          file=sys.stderr)
    sys.exit(1)
print(f"   digests: every pass == batch lint ({want} queries per pass)")
EOF

  # Stop the poller before the drain so its last OBSERVE isn't racing
  # the listener shutdown; by now it has rendered dozens of frames.
  kill "${TOP_PID}" 2>/dev/null || true
  wait "${TOP_PID}" 2>/dev/null || true
  TOP_PID=""
  if ! grep -q 'win  *qps' "${SMOKE_DIR}/promo_top.out"; then
    echo "ERROR: sia_top rendered no frames during the promotion smoke" >&2
    cat "${SMOKE_DIR}/promo_top.out" >&2
    exit 1
  fi
  TOP_FRAMES=$(grep -c 'now_us=' "${SMOKE_DIR}/promo_top.out" || true)
  echo "   sia_top: ${TOP_FRAMES} frames rendered at 10 Hz, none malformed"

  kill -TERM "${SERVE_PID}"
  if ! wait "${SERVE_PID}"; then
    echo "ERROR: sia_serve (promotion smoke) did not drain cleanly" >&2
    cat "${SMOKE_DIR}/promo.log" >&2
    exit 1
  fi
  SERVE_PID=""
  if ! grep -q '^DRAINED ' "${SMOKE_DIR}/promo.log"; then
    echo "ERROR: promotion smoke exited without a DRAINED line" >&2
    cat "${SMOKE_DIR}/promo.log" >&2
    exit 1
  fi

  # The drain flushed SIA_TRACE: one request's trace ID must link its
  # admission span, the background synthesis job its miss queued, and
  # the promotion decision folded from a later shadow run — three spans
  # on three threads, one trace.
  python3 - "${SMOKE_DIR}/promo_trace.json" <<'EOF'
import json, sys
from collections import defaultdict

with open(sys.argv[1]) as f:
    events = json.load(f)["traceEvents"]
names_by_trace = defaultdict(set)
for ev in events:
    tid = (ev.get("args") or {}).get("trace_id", 0)
    if tid:
        names_by_trace[tid].add(ev.get("name"))
need = {"server.accept", "rewrite.background.synthesize",
        "rewrite.promote.decision"}
linked = [t for t, names in names_by_trace.items() if need <= names]
if not linked:
    partial = {t: sorted(n & need) for t, n in names_by_trace.items()
               if n & need}
    print(f"ERROR: no trace ID links {sorted(need)}; partial chains: "
          f"{partial}", file=sys.stderr)
    sys.exit(1)
print(f"   trace chain: {len(linked)} trace ID(s) link admission -> "
      f"synthesis -> promotion decision (e.g. trace_id={linked[0]})")
EOF

  # --- OBSERVE overhead: polling must not perturb the serving path ------
  # A deterministic injected per-scan latency floor (engine.scan
  # latency:20) dominates request latency, so the quiet-vs-polled p99
  # comparison below is stable enough for a tight bound. Shadow sampling
  # is off: after the warm pass the cache is fully populated and the
  # background loop idle, so both measured passes do identical work.
  echo "== OBSERVE overhead guard (${OBS_GUARD_QUERIES} queries/pass," \
       "quiet vs 10 Hz sia_top poll, p99 delta <= ${OBSERVE_OVERHEAD_PCT}%)"
  SIA_FAULTS="engine.scan=latency:20" \
    "${SERVE}" --port-file "${SMOKE_DIR}/guard_port" \
    --workers 4 --scale "${SMOKE_SCALE}" \
    --max-iterations "${LINT_ITERATIONS}" \
    --shadow-sample-rate 0 \
    > "${SMOKE_DIR}/guard.log" 2>&1 &
  SERVE_PID=$!
  for _ in $(seq 1 300); do
    [[ -s "${SMOKE_DIR}/guard_port" ]] && break
    if ! kill -0 "${SERVE_PID}" 2>/dev/null; then break; fi
    sleep 0.1
  done
  if [[ ! -s "${SMOKE_DIR}/guard_port" ]]; then
    echo "ERROR: sia_serve (OBSERVE overhead guard) did not come up" >&2
    cat "${SMOKE_DIR}/guard.log" >&2
    exit 1
  fi
  GUARD_PORT=$(cat "${SMOKE_DIR}/guard_port")

  # Warm pass: populate the cache and queue every synthesis job, then
  # wait for the learning loop to go fully quiescent so the measured
  # passes compete with nothing. The queue-depth gauge is not enough —
  # it reads 0 while the final dequeued job is still synthesizing — so
  # wait until every enqueued job is accounted for.
  "${CLIENT}" --port "${GUARD_PORT}" --workload "${OBS_GUARD_QUERIES}" \
    --concurrency 4 -q > /dev/null
  for _ in $(seq 1 120); do
    "${CLIENT}" --port "${GUARD_PORT}" --stats -q \
      > "${SMOKE_DIR}/guard_depth.out"
    PENDING=$(python3 - "${SMOKE_DIR}/guard_depth.out" <<'EOF'
import json, sys
with open(sys.argv[1]) as f:
    for line in f:
        line = line.strip()
        if line.startswith("{"):
            c = json.loads(line).get("counters", {})
            print(int(c.get("rewrite.background.enqueued", 0)) -
                  int(c.get("rewrite.background.completed", 0)) -
                  int(c.get("rewrite.background.failed", 0)) -
                  int(c.get("rewrite.background.dropped", 0)))
            break
    else:
        print(0)
EOF
)
    [[ "${PENDING}" -le 0 ]] && break
    sleep 0.5
  done

  guard_stats() { # <out-file>
    "${CLIENT}" --port "${GUARD_PORT}" --stats -q |
      grep -m1 '^{' > "$1"
  }

  # Interleave two quiet and two polled passes and gate on the best of
  # each: min-of-two filters one-off scheduler noise (this also runs
  # under ASan on loaded CI boxes) while a real per-request OBSERVE cost
  # would tax both polled passes alike.
  guard_stats "${SMOKE_DIR}/guard_s0.json"
  for rep in 1 2; do
    "${CLIENT}" --port "${GUARD_PORT}" --workload "${OBS_GUARD_QUERIES}" \
      --concurrency 4 -q \
      --digests-out "${SMOKE_DIR}/guard_quiet${rep}.dig" > /dev/null
    guard_stats "${SMOKE_DIR}/guard_q${rep}.json"

    "${TOP}" --port "${GUARD_PORT}" --interval-ms 100 \
      >> "${SMOKE_DIR}/guard_top.out" 2>&1 &
    TOP_PID=$!
    "${CLIENT}" --port "${GUARD_PORT}" --workload "${OBS_GUARD_QUERIES}" \
      --concurrency 4 -q \
      --digests-out "${SMOKE_DIR}/guard_polled${rep}.dig" > /dev/null
    guard_stats "${SMOKE_DIR}/guard_p${rep}.json"
    kill "${TOP_PID}" 2>/dev/null || true
    wait "${TOP_PID}" 2>/dev/null || true
    TOP_PID=""
  done
  if ! grep -q 'now_us=' "${SMOKE_DIR}/guard_top.out"; then
    echo "ERROR: sia_top rendered no frames during the polled passes" >&2
    cat "${SMOKE_DIR}/guard_top.out" >&2
    exit 1
  fi

  for dig in "${SMOKE_DIR}"/guard_quiet2.dig \
             "${SMOKE_DIR}"/guard_polled1.dig \
             "${SMOKE_DIR}"/guard_polled2.dig; do
    if ! diff -u "${SMOKE_DIR}/guard_quiet1.dig" "${dig}"; then
      echo "ERROR: digests changed under 10 Hz OBSERVE polling (${dig})" >&2
      exit 1
    fi
  done
  echo "   digests: polled passes == quiet passes" \
       "(${OBS_GUARD_QUERIES} lines x 4)"

  python3 - "${OBSERVE_OVERHEAD_PCT}" "${OBS_GUARD_QUERIES}" \
      "${SMOKE_DIR}/guard_s0.json" \
      "${SMOKE_DIR}/guard_q1.json" "${SMOKE_DIR}/guard_p1.json" \
      "${SMOKE_DIR}/guard_q2.json" "${SMOKE_DIR}/guard_p2.json" <<'EOF'
import json, sys

tolerance_pct = float(sys.argv[1])
queries = int(sys.argv[2])
HIST = "server.request.latency_us"

def buckets(path):
    with open(path) as f:
        snap = json.load(f)
    h = snap.get("histograms", {}).get(HIST)
    if h is None:
        sys.exit(f"ERROR: {path} has no {HIST} histogram")
    return h["buckets"]

def p99(delta):
    # Same bucket scheme as src/obs/metrics.cc: bucket 0 is [0,1),
    # bucket i is [2^(i-1), 2^i); interpolate by rank within a bucket.
    total = sum(delta)
    if total == 0:
        sys.exit("ERROR: empty histogram delta (no requests recorded?)")
    target = 0.99 * total
    cumulative = 0
    for i, n in enumerate(delta):
        if n == 0:
            continue
        if cumulative + n >= target:
            lower = 0.0 if i == 0 else float(1 << (i - 1))
            upper = 1.0 if i == 0 else float(1 << i)
            frac = (target - cumulative) / n
            return lower + frac * (upper - lower)
        cumulative += n
    return 0.0

snaps = [buckets(p) for p in sys.argv[3:8]]
passes = []  # (label, p99) in run order: q1, p1, q2, p2
for label, older, newer in (("quiet1", 0, 1), ("polled1", 1, 2),
                            ("quiet2", 2, 3), ("polled2", 3, 4)):
    delta = [b - a for a, b in zip(snaps[older], snaps[newer])]
    if any(d < 0 for d in delta):
        sys.exit(f"ERROR: non-monotonic bucket counts in the {label} delta")
    if sum(delta) < queries:
        sys.exit(f"ERROR: {label} pass recorded {sum(delta)} requests, "
                 f"want >= {queries}")
    passes.append((label, p99(delta)))
q99 = min(v for label, v in passes if label.startswith("quiet"))
p99v = min(v for label, v in passes if label.startswith("polled"))
limit = q99 * (1.0 + tolerance_pct / 100.0)
detail = ", ".join(f"{label} {v:.0f}us" for label, v in passes)
print(f"   p99 request latency: {detail}")
print(f"   best-of-2: quiet {q99:.0f}us, polled {p99v:.0f}us "
      f"(limit {limit:.0f}us at +{tolerance_pct:g}%)")
if p99v > limit:
    sys.exit(f"ERROR: OBSERVE polling moved best-of-2 p99 from {q99:.0f}us "
             f"to {p99v:.0f}us (> +{tolerance_pct:g}%)")
EOF

  kill -TERM "${SERVE_PID}"
  if ! wait "${SERVE_PID}"; then
    echo "ERROR: sia_serve (OBSERVE overhead guard) did not drain cleanly" >&2
    cat "${SMOKE_DIR}/guard.log" >&2
    exit 1
  fi
  SERVE_PID=""
fi

# --- Concurrency gates ---------------------------------------------------
# src/obs is lock-light by design (relaxed atomics on counters, one
# mutex per thread-local trace ring), and the threading substrate
# (ThreadPool, morsel-parallel execution, the single-flight rewrite
# cache) is where any data race in the tree would live; run both test
# binaries under ThreadSanitizer in a dedicated build dir. TSan is
# incompatible with ASan, hence the separate dir.
TSAN_DIR="${BUILD_DIR}-tsan"
echo "== obs + parallel + server concurrency tests under ThreadSanitizer" \
     "(${TSAN_DIR})"
require_compiler "${TSAN_DIR}" "${CXX:-c++}"
cmake -B "${TSAN_DIR}" -S . -DSIA_SANITIZE=thread >/dev/null
cmake --build "${TSAN_DIR}" -j "${JOBS}" \
  --target obs_test parallel_test server_test
# scripts/tsan.supp silences reports from inside uninstrumented libz3
# frames (Z3's global allocator locking); our own code is not suppressed.
TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp" \
  "${TSAN_DIR}/tests/obs_test" --gtest_brief=1
TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp" \
  "${TSAN_DIR}/tests/parallel_test" --gtest_brief=1
TSAN_OPTIONS="suppressions=$(pwd)/scripts/tsan.supp" \
  "${TSAN_DIR}/tests/server_test" --gtest_brief=1

# Overhead guard: with SIA_METRICS/SIA_TRACE unset, the entire cost of
# the compiled-in instrumentation is one relaxed atomic load per site.
# Build bench_micro twice — observability compiled in (and left
# disabled) vs compiled out with -DSIA_DISABLE_OBS=ON — and require the
# instrumented hot paths to stay within OBS_OVERHEAD_PCT. Neither dir
# carries sanitizers: the numbers have to reflect shipping codegen.
OBS_ON_DIR="${BUILD_DIR}-obs-on"
OBS_OFF_DIR="${BUILD_DIR}-obs-off"
echo "== obs overhead guard (disabled-at-runtime vs compiled-out," \
     "tolerance ${OBS_OVERHEAD_PCT}%)"
require_compiler "${OBS_ON_DIR}" "${CXX:-c++}"
require_compiler "${OBS_OFF_DIR}" "${CXX:-c++}"
cmake -B "${OBS_ON_DIR}" -S . >/dev/null
cmake -B "${OBS_OFF_DIR}" -S . -DSIA_DISABLE_OBS=ON >/dev/null
cmake --build "${OBS_ON_DIR}" -j "${JOBS}" --target bench_micro
cmake --build "${OBS_OFF_DIR}" -j "${JOBS}" --target bench_micro
OBS_BENCH_FILTER='BM_ParseQuery|BM_BindPredicate|BM_EngineScanFilter$'
unset SIA_METRICS SIA_TRACE  # the guard measures the idle gate
# Interleave separate runs of the two binaries and take the per-benchmark
# minimum across all of them: alternation cancels machine-load drift that
# would otherwise swamp the ~1ns/site cost being measured. SIA_THREADS=1
# keeps pool scheduling out of the numbers: the comparison is about the
# per-site instrumentation gate, not parallel speedup variance.
for rep in 1 2 3; do
  SIA_THREADS=1 "${OBS_ON_DIR}/bench/bench_micro" \
    --benchmark_filter="${OBS_BENCH_FILTER}" \
    --benchmark_format=json > "${OBS_ON_DIR}/obs_overhead.${rep}.json"
  SIA_THREADS=1 "${OBS_OFF_DIR}/bench/bench_micro" \
    --benchmark_filter="${OBS_BENCH_FILTER}" \
    --benchmark_format=json > "${OBS_OFF_DIR}/obs_overhead.${rep}.json"
done
python3 - "${OBS_OVERHEAD_PCT}" \
    "${OBS_ON_DIR}"/obs_overhead.*.json -- \
    "${OBS_OFF_DIR}"/obs_overhead.*.json <<'EOF'
import json, sys

def best(paths):
    """Min real_time per benchmark across all runs (noise floor)."""
    out = {}
    for path in paths:
        with open(path) as f:
            doc = json.load(f)
        for b in doc["benchmarks"]:
            if b.get("run_type") == "aggregate":
                continue
            name = b["name"].split("/")[0]
            t = float(b["real_time"])
            if name not in out or t < out[name]:
                out[name] = t
    return out

tol = float(sys.argv[1])
sep = sys.argv.index("--")
on, off = best(sys.argv[2:sep]), best(sys.argv[sep + 1:])
failed = False
for name in sorted(off):
    if name not in on:
        print(f"   {name}: missing from obs-on run", file=sys.stderr)
        failed = True
        continue
    pct = (on[name] - off[name]) / off[name] * 100.0
    status = "ok" if pct <= tol else "FAIL"
    print(f"   {name}: obs-on {on[name]:.1f}ns vs obs-off {off[name]:.1f}ns "
          f"({pct:+.2f}%) {status}")
    if pct > tol:
        failed = True
if failed:
    print(f"ERROR: disabled observability exceeds {tol}% overhead",
          file=sys.stderr)
    sys.exit(1)
EOF

# --- Threads sweep: byte-identical results at every thread count ---------
# Run the Fig. 9 runtime bench serially and at 4 threads and require the
# per-scale result_hash values to match. The hash folds (row_count,
# content_hash, order_hash) of every ORIGINAL query execution, so it is
# immune to rewrite-side variance (a solver budget expiring under load)
# while still catching any morsel-parallel ordering or aliasing bug.
echo "== threads sweep (SIA_THREADS=1 vs 4: identical result hashes)"
cmake --build "${OBS_ON_DIR}" -j "${JOBS}" --target bench_fig9_runtime
for t in 1 4; do
  SIA_THREADS="${t}" SIA_BENCH_QUERIES=3 SIA_BENCH_ITERATIONS=2 \
    SIA_BENCH_JSON="${OBS_ON_DIR}/fig9_t${t}.json" \
    "${OBS_ON_DIR}/bench/bench_fig9_runtime" >/dev/null
done
python3 - "${OBS_ON_DIR}/fig9_t1.json" "${OBS_ON_DIR}/fig9_t4.json" <<'EOF'
import json, sys

docs = {}
for path in sys.argv[1:]:
    with open(path) as f:
        docs[path] = json.load(f)
failed = False
hashes = {}
for path, doc in docs.items():
    threads = doc["threads"]
    want = 1 if "t1" in path else 4
    if threads != want:
        print(f"   {path}: reports threads={threads}, expected {want}",
              file=sys.stderr)
        failed = True
    for scale in doc["summary"]["scales"]:
        hashes.setdefault(scale["sf"], {})[path] = scale["result_hash"]
for sf, by_path in sorted(hashes.items()):
    values = set(by_path.values())
    status = "ok" if len(values) == 1 else "FAIL"
    print(f"   sf={sf}: result_hash {' vs '.join(sorted(values))} {status}")
    if len(values) != 1:
        failed = True
if failed:
    print("ERROR: thread count changed query results", file=sys.stderr)
    sys.exit(1)
EOF

if [[ "${FAULT_SWEEP}" -eq 1 ]]; then
  SWEEP_BIN="${BUILD_DIR}/tests/fault_sweep_test"
  echo "== fault sweep (${SWEEP_QUERIES} queries per point, under ${SANITIZE})"
  # Only fault_sweep_test runs with SIA_FAULTS set: it is the one suite
  # written to expect injected failures (the rest of the tests assert
  # fault-free behavior and already ran above).
  # --list-fault-points lines are `<point> fired=N injected=M`; the
  # counts are all zero here (nothing ran) — keep only the point name.
  # Both env-armed suites run per point: the synchronous pipeline sweep
  # and the background-learning serving loop (which is the only consumer
  # of the background.synth.* / promote.bad_rewrite points).
  SWEEP_FILTER='FaultSweepTest.EnvArmedSweep'
  SWEEP_FILTER+=':FaultSweepTest.BackgroundLearningEnvArmedSweep'
  while read -r point _counts; do
    for mode in once always; do
      echo "   -- SIA_FAULTS=${point}=${mode}"
      SIA_FAULTS="${point}=${mode}" SIA_SWEEP_QUERIES="${SWEEP_QUERIES}" \
        "${SWEEP_BIN}" --gtest_filter="${SWEEP_FILTER}" \
        --gtest_brief=1
    done
  done < <("${LINT}" --list-fault-points)
  echo "   -- SIA_FAULTS=smt.check=prob:0.3,engine.scan=latency:5"
  SIA_FAULTS="smt.check=prob:0.3,engine.scan=latency:5" \
    SIA_SWEEP_QUERIES="${SWEEP_QUERIES}" \
    "${SWEEP_BIN}" --gtest_filter="${SWEEP_FILTER}" \
    --gtest_brief=1
fi

echo "== check.sh: all gates passed"
