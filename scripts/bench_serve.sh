#!/usr/bin/env bash
# Serving-path benchmark: regenerates BENCH_serve.json.
#
# Starts sia_serve in its default background-learning mode, drives the
# seeded template workload through it with sia_client for WARM_PASSES
# passes (enough for the learning loop to synthesize, shadow-verify and
# promote the hot templates), then measures one timed pass and reports,
# from STATS counter/histogram deltas across that pass:
#
#   qps                 completed queries / wall-clock seconds
#   shed_rate           shed / (accepted + shed) over the measured pass
#   hit_latency_us      p50/p99 of server.handle.hit_us — requests served
#                       by a promoted cached rewrite
#   miss_latency_us     p50/p99 of server.handle.miss_us — requests that
#                       executed the original plan
#   request_latency_us  p50/p95/p99 of server.request.latency_us
#                       (admission to response written)
#
# The hit/miss split is the amortization story in one file: misses pay
# the original-plan cost, hits collect the learned-predicate payoff.
# Caveat: at SHADOW_RATE 1 (the default, so warm passes gather
# promotion evidence quickly) every sampled promoted serve also pays
# the paranoid cross-check — a second full execution — which inflates
# hit latency; regenerate with SHADOW_RATE=0.1 WARM_PASSES=40 for a
# production-flavored profile.
#
# Usage: scripts/bench_serve.sh [out.json]
#   (default out: BENCH_serve.json at the repo root; "-" for stdout)
#
# Environment overrides:
#   BUILD_DIR    build directory with sia_serve/sia_client (default build)
#   QUERIES      template-workload size per pass (default 64)
#   SCALE        TPC-H scale factor (default 0.01)
#   WORKERS      sia_serve worker threads (default 4)
#   CONCURRENCY  sia_client driver threads (default 8)
#   WARM_PASSES  learning passes before the measured one (default 6)
#   SHADOW_RATE  --shadow-sample-rate for the daemon (default 1)
set -euo pipefail
cd "$(dirname "$0")/.."

BUILD_DIR=${BUILD_DIR:-build}
QUERIES=${QUERIES:-64}
SCALE=${SCALE:-0.01}
WORKERS=${WORKERS:-4}
CONCURRENCY=${CONCURRENCY:-8}
WARM_PASSES=${WARM_PASSES:-6}
SHADOW_RATE=${SHADOW_RATE:-1}
OUT=${1:-BENCH_serve.json}

SERVE="${BUILD_DIR}/tools/sia_serve"
CLIENT="${BUILD_DIR}/tools/sia_client"
for bin in "${SERVE}" "${CLIENT}"; do
  if [[ ! -x "${bin}" ]]; then
    echo "ERROR: ${bin} not built (cmake --build ${BUILD_DIR} first)" >&2
    exit 2
  fi
done

WORK_DIR=$(mktemp -d)
SERVE_PID=""
trap '[[ -n "${SERVE_PID}" ]] && kill "${SERVE_PID}" 2>/dev/null;
      rm -rf "${WORK_DIR}"' EXIT

"${SERVE}" --port-file "${WORK_DIR}/port" --workers "${WORKERS}" \
  --scale "${SCALE}" --promote-after 3 \
  --shadow-sample-rate "${SHADOW_RATE}" \
  > "${WORK_DIR}/serve.log" 2>&1 &
SERVE_PID=$!
for _ in $(seq 1 300); do
  [[ -s "${WORK_DIR}/port" ]] && break
  if ! kill -0 "${SERVE_PID}" 2>/dev/null; then break; fi
  sleep 0.1
done
if [[ ! -s "${WORK_DIR}/port" ]]; then
  echo "ERROR: sia_serve did not come up" >&2
  cat "${WORK_DIR}/serve.log" >&2
  exit 1
fi
PORT=$(cat "${WORK_DIR}/port")

echo "warming: ${WARM_PASSES} passes x ${QUERIES} queries" \
     "(sf=${SCALE}, ${WORKERS} workers, promote-after 3)" >&2
for pass in $(seq 1 "${WARM_PASSES}"); do
  "${CLIENT}" --port "${PORT}" --workload "${QUERIES}" \
    --concurrency "${CONCURRENCY}" -q > /dev/null
  sleep 1  # let queued background synthesis land between repeats
done

stats() { "${CLIENT}" --port "${PORT}" --stats -q | grep -m1 '^{' > "$1"; }

stats "${WORK_DIR}/s0.json"
T0=$(date +%s%N)
"${CLIENT}" --port "${PORT}" --workload "${QUERIES}" \
  --concurrency "${CONCURRENCY}" -q > /dev/null
T1=$(date +%s%N)
stats "${WORK_DIR}/s1.json"

kill -TERM "${SERVE_PID}"
wait "${SERVE_PID}" || true
SERVE_PID=""

python3 - "${WORK_DIR}/s0.json" "${WORK_DIR}/s1.json" "$((T1 - T0))" \
    "${QUERIES}" "${SCALE}" "${WORKERS}" "${CONCURRENCY}" \
    "${WARM_PASSES}" "${SHADOW_RATE}" > "${WORK_DIR}/bench.json" <<'EOF'
import json, sys

with open(sys.argv[1]) as f:
    s0 = json.load(f)
with open(sys.argv[2]) as f:
    s1 = json.load(f)
elapsed_s = int(sys.argv[3]) / 1e9

def counter(name):
    return (s1.get("counters", {}).get(name, 0) -
            s0.get("counters", {}).get(name, 0))

def hist_delta(name):
    h0 = s0.get("histograms", {}).get(name)
    h1 = s1.get("histograms", {}).get(name)
    if h1 is None:
        return None
    b0 = h0["buckets"] if h0 else [0] * len(h1["buckets"])
    return [max(0, b - a) for a, b in zip(b0, h1["buckets"])]

def pct(delta, q):
    # Bucket scheme from src/obs/metrics.cc: bucket 0 is [0,1),
    # bucket i is [2^(i-1), 2^i); interpolate by rank within a bucket.
    total = sum(delta)
    if total == 0:
        return None
    target = q * total
    cumulative = 0
    for i, n in enumerate(delta):
        if n == 0:
            continue
        if cumulative + n >= target:
            lower = 0.0 if i == 0 else float(1 << (i - 1))
            upper = 1.0 if i == 0 else float(1 << i)
            return round(lower + (target - cumulative) / n * (upper - lower))
        cumulative += n
    return None

def summary(name, quantiles):
    delta = hist_delta(name)
    if delta is None or sum(delta) == 0:
        return {"count": 0}
    out = {"count": sum(delta)}
    for q in quantiles:
        out[f"p{int(q * 100)}"] = pct(delta, q)
    return out

accepted = counter("server.requests.accepted")
shed = counter("server.requests.shed")
offered = accepted + shed
result = {
    "bench": "serve",
    "config": {
        "queries_per_pass": int(sys.argv[4]),
        "scale_factor": float(sys.argv[5]),
        "workers": int(sys.argv[6]),
        "client_concurrency": int(sys.argv[7]),
        "warm_passes": int(sys.argv[8]),
        "promote_after": 3,
        "shadow_sample_rate": float(sys.argv[9]),
    },
    "measured_pass": {
        "elapsed_s": round(elapsed_s, 3),
        "qps": round(accepted / elapsed_s, 1) if elapsed_s > 0 else None,
        "shed_rate": round(shed / offered, 4) if offered else 0.0,
        "cache_hits": counter("rewrite.cache.hit"),
        "cache_misses": counter("rewrite.cache.miss"),
        "hit_latency_us": summary("server.handle.hit_us", (0.5, 0.99)),
        "miss_latency_us": summary("server.handle.miss_us", (0.5, 0.99)),
        "request_latency_us":
            summary("server.request.latency_us", (0.5, 0.95, 0.99)),
    },
    "lifetime": {
        "promoted": s1.get("counters", {})
                      .get("rewrite.promote.promoted", 0),
        "demoted": s1.get("counters", {}).get("rewrite.promote.demoted", 0),
        "digest_mismatches": s1.get("counters", {})
                               .get("rewrite.promote.digest_mismatch", 0),
    },
}
print(json.dumps(result, indent=2))
EOF

if [[ "${OUT}" == "-" ]]; then
  cat "${WORK_DIR}/bench.json"
else
  cp "${WORK_DIR}/bench.json" "${OUT}"
  echo "wrote ${OUT}" >&2
fi
