file(REMOVE_RECURSE
  "CMakeFiles/sia_synth.dir/interval_synthesizer.cc.o"
  "CMakeFiles/sia_synth.dir/interval_synthesizer.cc.o.d"
  "CMakeFiles/sia_synth.dir/sample_generator.cc.o"
  "CMakeFiles/sia_synth.dir/sample_generator.cc.o.d"
  "CMakeFiles/sia_synth.dir/synthesizer.cc.o"
  "CMakeFiles/sia_synth.dir/synthesizer.cc.o.d"
  "CMakeFiles/sia_synth.dir/verifier.cc.o"
  "CMakeFiles/sia_synth.dir/verifier.cc.o.d"
  "libsia_synth.a"
  "libsia_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
