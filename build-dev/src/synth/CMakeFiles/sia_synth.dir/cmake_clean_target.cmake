file(REMOVE_RECURSE
  "libsia_synth.a"
)
