
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/synth/interval_synthesizer.cc" "src/synth/CMakeFiles/sia_synth.dir/interval_synthesizer.cc.o" "gcc" "src/synth/CMakeFiles/sia_synth.dir/interval_synthesizer.cc.o.d"
  "/root/repo/src/synth/sample_generator.cc" "src/synth/CMakeFiles/sia_synth.dir/sample_generator.cc.o" "gcc" "src/synth/CMakeFiles/sia_synth.dir/sample_generator.cc.o.d"
  "/root/repo/src/synth/synthesizer.cc" "src/synth/CMakeFiles/sia_synth.dir/synthesizer.cc.o" "gcc" "src/synth/CMakeFiles/sia_synth.dir/synthesizer.cc.o.d"
  "/root/repo/src/synth/verifier.cc" "src/synth/CMakeFiles/sia_synth.dir/verifier.cc.o" "gcc" "src/synth/CMakeFiles/sia_synth.dir/verifier.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build-dev/src/smt/CMakeFiles/sia_smt.dir/DependInfo.cmake"
  "/root/repo/build-dev/src/learn/CMakeFiles/sia_learn.dir/DependInfo.cmake"
  "/root/repo/build-dev/src/ir/CMakeFiles/sia_ir.dir/DependInfo.cmake"
  "/root/repo/build-dev/src/types/CMakeFiles/sia_types.dir/DependInfo.cmake"
  "/root/repo/build-dev/src/common/CMakeFiles/sia_common.dir/DependInfo.cmake"
  "/root/repo/build-dev/src/obs/CMakeFiles/sia_obs.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
