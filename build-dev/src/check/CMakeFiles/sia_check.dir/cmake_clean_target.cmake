file(REMOVE_RECURSE
  "libsia_check.a"
)
