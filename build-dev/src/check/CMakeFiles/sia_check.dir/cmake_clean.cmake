file(REMOVE_RECURSE
  "CMakeFiles/sia_check.dir/diagnostic.cc.o"
  "CMakeFiles/sia_check.dir/diagnostic.cc.o.d"
  "CMakeFiles/sia_check.dir/expr_validator.cc.o"
  "CMakeFiles/sia_check.dir/expr_validator.cc.o.d"
  "CMakeFiles/sia_check.dir/plan_validator.cc.o"
  "CMakeFiles/sia_check.dir/plan_validator.cc.o.d"
  "libsia_check.a"
  "libsia_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
