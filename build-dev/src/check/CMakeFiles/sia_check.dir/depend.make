# Empty dependencies file for sia_check.
# This may be replaced when dependencies are built.
