# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build-dev/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("obs")
subdirs("common")
subdirs("types")
subdirs("catalog")
subdirs("ir")
subdirs("check")
subdirs("parser")
subdirs("smt")
subdirs("learn")
subdirs("synth")
subdirs("rewrite")
subdirs("engine")
subdirs("workload")
