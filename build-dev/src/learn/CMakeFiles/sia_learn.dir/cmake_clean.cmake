file(REMOVE_RECURSE
  "CMakeFiles/sia_learn.dir/learner.cc.o"
  "CMakeFiles/sia_learn.dir/learner.cc.o.d"
  "CMakeFiles/sia_learn.dir/linear_form.cc.o"
  "CMakeFiles/sia_learn.dir/linear_form.cc.o.d"
  "CMakeFiles/sia_learn.dir/rational.cc.o"
  "CMakeFiles/sia_learn.dir/rational.cc.o.d"
  "CMakeFiles/sia_learn.dir/svm.cc.o"
  "CMakeFiles/sia_learn.dir/svm.cc.o.d"
  "libsia_learn.a"
  "libsia_learn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_learn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
