# Empty dependencies file for sia_learn.
# This may be replaced when dependencies are built.
