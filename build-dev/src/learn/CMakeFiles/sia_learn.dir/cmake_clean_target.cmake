file(REMOVE_RECURSE
  "libsia_learn.a"
)
