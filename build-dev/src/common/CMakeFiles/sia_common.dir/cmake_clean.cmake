file(REMOVE_RECURSE
  "CMakeFiles/sia_common.dir/date.cc.o"
  "CMakeFiles/sia_common.dir/date.cc.o.d"
  "CMakeFiles/sia_common.dir/fault_injection.cc.o"
  "CMakeFiles/sia_common.dir/fault_injection.cc.o.d"
  "CMakeFiles/sia_common.dir/rng.cc.o"
  "CMakeFiles/sia_common.dir/rng.cc.o.d"
  "CMakeFiles/sia_common.dir/status.cc.o"
  "CMakeFiles/sia_common.dir/status.cc.o.d"
  "CMakeFiles/sia_common.dir/strings.cc.o"
  "CMakeFiles/sia_common.dir/strings.cc.o.d"
  "CMakeFiles/sia_common.dir/thread_pool.cc.o"
  "CMakeFiles/sia_common.dir/thread_pool.cc.o.d"
  "libsia_common.a"
  "libsia_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
