file(REMOVE_RECURSE
  "libsia_common.a"
)
