# Empty dependencies file for sia_common.
# This may be replaced when dependencies are built.
