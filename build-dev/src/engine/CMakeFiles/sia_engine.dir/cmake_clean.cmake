file(REMOVE_RECURSE
  "CMakeFiles/sia_engine.dir/column_table.cc.o"
  "CMakeFiles/sia_engine.dir/column_table.cc.o.d"
  "CMakeFiles/sia_engine.dir/cost_aware_rewriter.cc.o"
  "CMakeFiles/sia_engine.dir/cost_aware_rewriter.cc.o.d"
  "CMakeFiles/sia_engine.dir/csv.cc.o"
  "CMakeFiles/sia_engine.dir/csv.cc.o.d"
  "CMakeFiles/sia_engine.dir/exec_expr.cc.o"
  "CMakeFiles/sia_engine.dir/exec_expr.cc.o.d"
  "CMakeFiles/sia_engine.dir/executor.cc.o"
  "CMakeFiles/sia_engine.dir/executor.cc.o.d"
  "CMakeFiles/sia_engine.dir/runner.cc.o"
  "CMakeFiles/sia_engine.dir/runner.cc.o.d"
  "CMakeFiles/sia_engine.dir/selectivity.cc.o"
  "CMakeFiles/sia_engine.dir/selectivity.cc.o.d"
  "CMakeFiles/sia_engine.dir/tpch_gen.cc.o"
  "CMakeFiles/sia_engine.dir/tpch_gen.cc.o.d"
  "CMakeFiles/sia_engine.dir/vector_filter.cc.o"
  "CMakeFiles/sia_engine.dir/vector_filter.cc.o.d"
  "libsia_engine.a"
  "libsia_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
