file(REMOVE_RECURSE
  "libsia_engine.a"
)
