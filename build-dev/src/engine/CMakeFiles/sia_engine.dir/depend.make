# Empty dependencies file for sia_engine.
# This may be replaced when dependencies are built.
