file(REMOVE_RECURSE
  "libsia_parser.a"
)
