file(REMOVE_RECURSE
  "CMakeFiles/sia_parser.dir/lexer.cc.o"
  "CMakeFiles/sia_parser.dir/lexer.cc.o.d"
  "CMakeFiles/sia_parser.dir/parser.cc.o"
  "CMakeFiles/sia_parser.dir/parser.cc.o.d"
  "libsia_parser.a"
  "libsia_parser.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_parser.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
