file(REMOVE_RECURSE
  "CMakeFiles/sia_workload.dir/casestudy.cc.o"
  "CMakeFiles/sia_workload.dir/casestudy.cc.o.d"
  "CMakeFiles/sia_workload.dir/querygen.cc.o"
  "CMakeFiles/sia_workload.dir/querygen.cc.o.d"
  "libsia_workload.a"
  "libsia_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
