file(REMOVE_RECURSE
  "libsia_workload.a"
)
