file(REMOVE_RECURSE
  "libsia_smt.a"
)
