file(REMOVE_RECURSE
  "CMakeFiles/sia_smt.dir/encoder.cc.o"
  "CMakeFiles/sia_smt.dir/encoder.cc.o.d"
  "CMakeFiles/sia_smt.dir/smt_context.cc.o"
  "CMakeFiles/sia_smt.dir/smt_context.cc.o.d"
  "libsia_smt.a"
  "libsia_smt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_smt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
