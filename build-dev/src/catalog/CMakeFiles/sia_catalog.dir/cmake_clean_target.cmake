file(REMOVE_RECURSE
  "libsia_catalog.a"
)
