file(REMOVE_RECURSE
  "CMakeFiles/sia_catalog.dir/catalog.cc.o"
  "CMakeFiles/sia_catalog.dir/catalog.cc.o.d"
  "libsia_catalog.a"
  "libsia_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
