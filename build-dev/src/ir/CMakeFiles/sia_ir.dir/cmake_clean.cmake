file(REMOVE_RECURSE
  "CMakeFiles/sia_ir.dir/analysis.cc.o"
  "CMakeFiles/sia_ir.dir/analysis.cc.o.d"
  "CMakeFiles/sia_ir.dir/binder.cc.o"
  "CMakeFiles/sia_ir.dir/binder.cc.o.d"
  "CMakeFiles/sia_ir.dir/evaluator.cc.o"
  "CMakeFiles/sia_ir.dir/evaluator.cc.o.d"
  "CMakeFiles/sia_ir.dir/expr.cc.o"
  "CMakeFiles/sia_ir.dir/expr.cc.o.d"
  "CMakeFiles/sia_ir.dir/simplify.cc.o"
  "CMakeFiles/sia_ir.dir/simplify.cc.o.d"
  "libsia_ir.a"
  "libsia_ir.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_ir.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
