# Empty dependencies file for sia_ir.
# This may be replaced when dependencies are built.
