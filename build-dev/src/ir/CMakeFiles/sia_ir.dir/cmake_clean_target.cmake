file(REMOVE_RECURSE
  "libsia_ir.a"
)
