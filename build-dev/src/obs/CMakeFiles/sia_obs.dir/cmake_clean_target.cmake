file(REMOVE_RECURSE
  "libsia_obs.a"
)
