file(REMOVE_RECURSE
  "CMakeFiles/sia_obs.dir/metrics.cc.o"
  "CMakeFiles/sia_obs.dir/metrics.cc.o.d"
  "CMakeFiles/sia_obs.dir/obs.cc.o"
  "CMakeFiles/sia_obs.dir/obs.cc.o.d"
  "CMakeFiles/sia_obs.dir/trace.cc.o"
  "CMakeFiles/sia_obs.dir/trace.cc.o.d"
  "libsia_obs.a"
  "libsia_obs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_obs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
