# Empty dependencies file for sia_rewrite.
# This may be replaced when dependencies are built.
