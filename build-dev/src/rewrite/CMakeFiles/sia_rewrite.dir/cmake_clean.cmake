file(REMOVE_RECURSE
  "CMakeFiles/sia_rewrite.dir/batch_rewriter.cc.o"
  "CMakeFiles/sia_rewrite.dir/batch_rewriter.cc.o.d"
  "CMakeFiles/sia_rewrite.dir/plan.cc.o"
  "CMakeFiles/sia_rewrite.dir/plan.cc.o.d"
  "CMakeFiles/sia_rewrite.dir/planner.cc.o"
  "CMakeFiles/sia_rewrite.dir/planner.cc.o.d"
  "CMakeFiles/sia_rewrite.dir/rewrite_cache.cc.o"
  "CMakeFiles/sia_rewrite.dir/rewrite_cache.cc.o.d"
  "CMakeFiles/sia_rewrite.dir/rules.cc.o"
  "CMakeFiles/sia_rewrite.dir/rules.cc.o.d"
  "CMakeFiles/sia_rewrite.dir/sia_rewriter.cc.o"
  "CMakeFiles/sia_rewrite.dir/sia_rewriter.cc.o.d"
  "libsia_rewrite.a"
  "libsia_rewrite.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_rewrite.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
