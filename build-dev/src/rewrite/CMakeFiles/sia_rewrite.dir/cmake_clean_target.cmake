file(REMOVE_RECURSE
  "libsia_rewrite.a"
)
