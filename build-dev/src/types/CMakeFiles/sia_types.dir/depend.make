# Empty dependencies file for sia_types.
# This may be replaced when dependencies are built.
