file(REMOVE_RECURSE
  "CMakeFiles/sia_types.dir/data_type.cc.o"
  "CMakeFiles/sia_types.dir/data_type.cc.o.d"
  "CMakeFiles/sia_types.dir/schema.cc.o"
  "CMakeFiles/sia_types.dir/schema.cc.o.d"
  "CMakeFiles/sia_types.dir/tuple.cc.o"
  "CMakeFiles/sia_types.dir/tuple.cc.o.d"
  "CMakeFiles/sia_types.dir/value.cc.o"
  "CMakeFiles/sia_types.dir/value.cc.o.d"
  "libsia_types.a"
  "libsia_types.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_types.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
