file(REMOVE_RECURSE
  "libsia_types.a"
)
