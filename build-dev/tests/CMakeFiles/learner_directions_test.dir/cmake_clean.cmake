file(REMOVE_RECURSE
  "CMakeFiles/learner_directions_test.dir/learner_directions_test.cc.o"
  "CMakeFiles/learner_directions_test.dir/learner_directions_test.cc.o.d"
  "learner_directions_test"
  "learner_directions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/learner_directions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
