# Empty compiler generated dependencies file for learner_directions_test.
# This may be replaced when dependencies are built.
