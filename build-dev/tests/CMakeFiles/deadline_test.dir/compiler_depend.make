# Empty compiler generated dependencies file for deadline_test.
# This may be replaced when dependencies are built.
