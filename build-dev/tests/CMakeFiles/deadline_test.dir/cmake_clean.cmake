file(REMOVE_RECURSE
  "CMakeFiles/deadline_test.dir/deadline_test.cc.o"
  "CMakeFiles/deadline_test.dir/deadline_test.cc.o.d"
  "deadline_test"
  "deadline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
