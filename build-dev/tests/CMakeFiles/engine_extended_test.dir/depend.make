# Empty dependencies file for engine_extended_test.
# This may be replaced when dependencies are built.
