file(REMOVE_RECURSE
  "CMakeFiles/engine_extended_test.dir/engine_extended_test.cc.o"
  "CMakeFiles/engine_extended_test.dir/engine_extended_test.cc.o.d"
  "engine_extended_test"
  "engine_extended_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
