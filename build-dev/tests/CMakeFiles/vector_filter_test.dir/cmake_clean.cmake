file(REMOVE_RECURSE
  "CMakeFiles/vector_filter_test.dir/vector_filter_test.cc.o"
  "CMakeFiles/vector_filter_test.dir/vector_filter_test.cc.o.d"
  "vector_filter_test"
  "vector_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vector_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
