# Empty dependencies file for vector_filter_test.
# This may be replaced when dependencies are built.
