file(REMOVE_RECURSE
  "CMakeFiles/equivalence_transfer_test.dir/equivalence_transfer_test.cc.o"
  "CMakeFiles/equivalence_transfer_test.dir/equivalence_transfer_test.cc.o.d"
  "equivalence_transfer_test"
  "equivalence_transfer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/equivalence_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
