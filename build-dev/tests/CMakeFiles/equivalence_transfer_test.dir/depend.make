# Empty dependencies file for equivalence_transfer_test.
# This may be replaced when dependencies are built.
