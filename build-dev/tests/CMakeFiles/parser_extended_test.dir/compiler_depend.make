# Empty compiler generated dependencies file for parser_extended_test.
# This may be replaced when dependencies are built.
