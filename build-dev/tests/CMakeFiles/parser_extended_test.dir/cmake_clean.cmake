file(REMOVE_RECURSE
  "CMakeFiles/parser_extended_test.dir/parser_extended_test.cc.o"
  "CMakeFiles/parser_extended_test.dir/parser_extended_test.cc.o.d"
  "parser_extended_test"
  "parser_extended_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/parser_extended_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
