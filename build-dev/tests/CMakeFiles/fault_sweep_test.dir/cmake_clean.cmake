file(REMOVE_RECURSE
  "CMakeFiles/fault_sweep_test.dir/fault_sweep_test.cc.o"
  "CMakeFiles/fault_sweep_test.dir/fault_sweep_test.cc.o.d"
  "fault_sweep_test"
  "fault_sweep_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
