# Empty dependencies file for obs_pipeline_test.
# This may be replaced when dependencies are built.
