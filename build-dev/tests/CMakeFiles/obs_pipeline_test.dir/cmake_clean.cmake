file(REMOVE_RECURSE
  "CMakeFiles/obs_pipeline_test.dir/obs_pipeline_test.cc.o"
  "CMakeFiles/obs_pipeline_test.dir/obs_pipeline_test.cc.o.d"
  "obs_pipeline_test"
  "obs_pipeline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/obs_pipeline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
