# Empty dependencies file for encoding_agreement_test.
# This may be replaced when dependencies are built.
