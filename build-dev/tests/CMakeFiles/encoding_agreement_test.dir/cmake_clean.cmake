file(REMOVE_RECURSE
  "CMakeFiles/encoding_agreement_test.dir/encoding_agreement_test.cc.o"
  "CMakeFiles/encoding_agreement_test.dir/encoding_agreement_test.cc.o.d"
  "encoding_agreement_test"
  "encoding_agreement_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/encoding_agreement_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
