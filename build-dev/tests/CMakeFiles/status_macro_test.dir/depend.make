# Empty dependencies file for status_macro_test.
# This may be replaced when dependencies are built.
