file(REMOVE_RECURSE
  "CMakeFiles/status_macro_test.dir/status_macro_test.cc.o"
  "CMakeFiles/status_macro_test.dir/status_macro_test.cc.o.d"
  "status_macro_test"
  "status_macro_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/status_macro_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
