# Empty compiler generated dependencies file for synthesizer_unit_test.
# This may be replaced when dependencies are built.
