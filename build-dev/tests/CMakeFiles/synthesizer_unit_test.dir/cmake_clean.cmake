file(REMOVE_RECURSE
  "CMakeFiles/synthesizer_unit_test.dir/synthesizer_unit_test.cc.o"
  "CMakeFiles/synthesizer_unit_test.dir/synthesizer_unit_test.cc.o.d"
  "synthesizer_unit_test"
  "synthesizer_unit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synthesizer_unit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
