file(REMOVE_RECURSE
  "CMakeFiles/cost_aware_test.dir/cost_aware_test.cc.o"
  "CMakeFiles/cost_aware_test.dir/cost_aware_test.cc.o.d"
  "cost_aware_test"
  "cost_aware_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cost_aware_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
