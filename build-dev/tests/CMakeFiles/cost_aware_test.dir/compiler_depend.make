# Empty compiler generated dependencies file for cost_aware_test.
# This may be replaced when dependencies are built.
