file(REMOVE_RECURSE
  "CMakeFiles/aggregation_rule.dir/aggregation_rule.cpp.o"
  "CMakeFiles/aggregation_rule.dir/aggregation_rule.cpp.o.d"
  "aggregation_rule"
  "aggregation_rule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregation_rule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
