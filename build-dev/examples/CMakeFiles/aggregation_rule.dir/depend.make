# Empty dependencies file for aggregation_rule.
# This may be replaced when dependencies are built.
