file(REMOVE_RECURSE
  "CMakeFiles/pushdown_tour.dir/pushdown_tour.cpp.o"
  "CMakeFiles/pushdown_tour.dir/pushdown_tour.cpp.o.d"
  "pushdown_tour"
  "pushdown_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pushdown_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
