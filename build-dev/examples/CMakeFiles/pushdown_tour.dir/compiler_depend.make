# Empty compiler generated dependencies file for pushdown_tour.
# This may be replaced when dependencies are built.
