# Empty dependencies file for null_semantics.
# This may be replaced when dependencies are built.
