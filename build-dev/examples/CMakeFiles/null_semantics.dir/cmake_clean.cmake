file(REMOVE_RECURSE
  "CMakeFiles/null_semantics.dir/null_semantics.cpp.o"
  "CMakeFiles/null_semantics.dir/null_semantics.cpp.o.d"
  "null_semantics"
  "null_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/null_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
