# Empty compiler generated dependencies file for sia_cli.
# This may be replaced when dependencies are built.
