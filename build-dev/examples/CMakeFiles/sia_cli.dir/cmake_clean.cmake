file(REMOVE_RECURSE
  "CMakeFiles/sia_cli.dir/sia_cli.cpp.o"
  "CMakeFiles/sia_cli.dir/sia_cli.cpp.o.d"
  "sia_cli"
  "sia_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
