file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_casestudy.dir/bench_fig6_casestudy.cc.o"
  "CMakeFiles/bench_fig6_casestudy.dir/bench_fig6_casestudy.cc.o.d"
  "bench_fig6_casestudy"
  "bench_fig6_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
