# Empty dependencies file for bench_ablation_separability.
# This may be replaced when dependencies are built.
