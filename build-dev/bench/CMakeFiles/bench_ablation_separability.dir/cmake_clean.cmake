file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_separability.dir/bench_ablation_separability.cc.o"
  "CMakeFiles/bench_ablation_separability.dir/bench_ablation_separability.cc.o.d"
  "bench_ablation_separability"
  "bench_ablation_separability.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_separability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
