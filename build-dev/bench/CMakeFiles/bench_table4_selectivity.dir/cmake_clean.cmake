file(REMOVE_RECURSE
  "CMakeFiles/bench_table4_selectivity.dir/bench_table4_selectivity.cc.o"
  "CMakeFiles/bench_table4_selectivity.dir/bench_table4_selectivity.cc.o.d"
  "bench_table4_selectivity"
  "bench_table4_selectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table4_selectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
