file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_efficacy.dir/bench_table2_efficacy.cc.o"
  "CMakeFiles/bench_table2_efficacy.dir/bench_table2_efficacy.cc.o.d"
  "bench_table2_efficacy"
  "bench_table2_efficacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_efficacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
