# Empty compiler generated dependencies file for bench_table2_efficacy.
# This may be replaced when dependencies are built.
