file(REMOVE_RECURSE
  "CMakeFiles/bench_motivating_example.dir/bench_motivating_example.cc.o"
  "CMakeFiles/bench_motivating_example.dir/bench_motivating_example.cc.o.d"
  "bench_motivating_example"
  "bench_motivating_example.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_motivating_example.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
