# Empty dependencies file for bench_motivating_example.
# This may be replaced when dependencies are built.
