# Empty dependencies file for bench_fig7_iterations.
# This may be replaced when dependencies are built.
