file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_iterations.dir/bench_fig7_iterations.cc.o"
  "CMakeFiles/bench_fig7_iterations.dir/bench_fig7_iterations.cc.o.d"
  "bench_fig7_iterations"
  "bench_fig7_iterations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_iterations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
