file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_costaware.dir/bench_ablation_costaware.cc.o"
  "CMakeFiles/bench_ablation_costaware.dir/bench_ablation_costaware.cc.o.d"
  "bench_ablation_costaware"
  "bench_ablation_costaware.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_costaware.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
