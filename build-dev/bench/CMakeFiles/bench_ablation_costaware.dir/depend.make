# Empty dependencies file for bench_ablation_costaware.
# This may be replaced when dependencies are built.
