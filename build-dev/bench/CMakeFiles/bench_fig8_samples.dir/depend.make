# Empty dependencies file for bench_fig8_samples.
# This may be replaced when dependencies are built.
