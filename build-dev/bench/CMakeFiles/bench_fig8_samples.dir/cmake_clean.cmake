file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_samples.dir/bench_fig8_samples.cc.o"
  "CMakeFiles/bench_fig8_samples.dir/bench_fig8_samples.cc.o.d"
  "bench_fig8_samples"
  "bench_fig8_samples.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_samples.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
