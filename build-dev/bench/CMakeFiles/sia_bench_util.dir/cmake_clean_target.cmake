file(REMOVE_RECURSE
  "libsia_bench_util.a"
)
