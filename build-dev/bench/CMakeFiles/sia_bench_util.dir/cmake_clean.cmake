file(REMOVE_RECURSE
  "CMakeFiles/sia_bench_util.dir/experiment_lib.cc.o"
  "CMakeFiles/sia_bench_util.dir/experiment_lib.cc.o.d"
  "CMakeFiles/sia_bench_util.dir/runtime_lib.cc.o"
  "CMakeFiles/sia_bench_util.dir/runtime_lib.cc.o.d"
  "libsia_bench_util.a"
  "libsia_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
