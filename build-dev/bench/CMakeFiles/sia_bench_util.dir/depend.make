# Empty dependencies file for sia_bench_util.
# This may be replaced when dependencies are built.
