# Empty dependencies file for sia_lint.
# This may be replaced when dependencies are built.
