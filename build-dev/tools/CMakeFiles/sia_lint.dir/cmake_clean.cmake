file(REMOVE_RECURSE
  "CMakeFiles/sia_lint.dir/sia_lint.cc.o"
  "CMakeFiles/sia_lint.dir/sia_lint.cc.o.d"
  "sia_lint"
  "sia_lint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sia_lint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
